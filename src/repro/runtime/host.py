"""A host participating in a partitioned computation (Section 5).

Each :class:`TrustedHost` holds the fields and code fragments the
splitter assigned to it, a local slice of the integrity control stack,
and its frame copies.  Every incoming request is validated exactly as
Figure 6 prescribes — invalid requests are ignored and logged, never
answered — so a bad host gains nothing by fabricating messages.

When the network runs its reliable-delivery protocol (fault injection
enabled), every remote message carries an idempotency key; the host
remembers the result of each processed key and answers retransmissions
and duplicates from that table without re-executing their effects.  A
re-delivered ``sync`` therefore returns the originally minted token (one
ICS push, not two), and a re-delivered ``lgoto``/``rgoto`` does not run
its fragment chain again.  Replays carrying a *fresh* key still fall
through to the Figure 6 checks, where the one-shot capability discipline
rejects them.

Under fault injection the host additionally keeps a
:class:`~repro.runtime.checkpoint.DurableStore`: every state mutation —
field and array writes, frame variables, ICS pushes/pops, the
idempotency table, deferred forwards — is written ahead to its WAL, and
a sealed checkpoint compacts the log every few processed messages.  In
the ``volatile`` crash mode a crash wipes all in-memory state
(:meth:`TrustedHost.crash_wipe`); the restart rebuilds it bit-identically
from checkpoint + WAL replay (:meth:`TrustedHost.recover`) and
broadcasts a sealed ``recover`` announcement so peers re-forward
pending data.  When the network's quarantine layer is enabled, any
rejected remote request escalates to
:class:`~repro.runtime.network.SecurityAbort` instead of being silently
ignored, blacklisting the offender.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..labels import Label
from ..splitter.fragments import (
    EdgeAction,
    Fragment,
    OpAssignVar,
    OpForward,
    OpSetElem,
    OpSetField,
    SplitProgram,
    TermBranch,
    TermCall,
    TermHalt,
    TermJump,
    TermReturn,
)
from ..splitter import ir
from ..trust import KeyRegistry
from .checkpoint import (
    CheckpointTamperError,
    DurableStore,
    copy_state,
    recovery_blob,
)
from .compiler import CompiledFragment, compilation_enabled, compile_split
from .ics import LocalStack
from .network import Message, SecurityAbort, Transport
from .tokens import Token, TokenFactory
from .values import REJECTED, ArrayRef, FrameID, ObjectRef, ReturnInfo

#: Re-export of :data:`repro.runtime.values.REJECTED` under its
#: historical name (tests and the attack harness import it from here).
_REJECTED = REJECTED
_UNSEEN = object()


class ExecutionState:
    """The moving point of control: (entry, frame, token)."""

    __slots__ = ("entry", "frame", "token")

    def __init__(self, entry: str, frame: FrameID, token: Optional[Token]) -> None:
        self.entry = entry
        self.frame = frame
        self.token = token


class HaltSignal(Exception):
    """Raised internally when the root capability is consumed."""


class TrustedHost:
    """A well-behaved host executing its part of the split program."""

    def __init__(
        self,
        name: str,
        split: SplitProgram,
        network: Transport,
        registry: KeyRegistry,
        opt_level: int = 1,
        token_rng=None,
        checkpoint_interval: int = 4,
        image=None,
    ) -> None:
        self.name = name
        self.split = split
        self.network = network
        self.opt_level = opt_level
        #: this host's slice of a shared RuntimeImage (immutable per-split
        #: artifacts: entry tables, invoker ACLs, initial field values,
        #: precomputed forward integrity checks).  None for a standalone
        #: host, which computes the same artifacts for itself below.
        self._image = image
        self.factory = TokenFactory(name, registry, rng=token_rng)
        self.stack = LocalStack()
        #: idempotency table: processed msg_id -> result.  Under the
        #: volatile crash mode it is rebuilt from the durable store's
        #: WAL, so retransmissions stay suppressed across a crash.
        self._seen_requests: Dict[int, Any] = {}
        #: arrays allocated here: oid -> element list / element label.
        self.array_store: Dict[int, list] = {}
        self.array_meta: Dict[int, Label] = {}
        #: frame copies: FrameID -> variable slots ({name: value}).  The
        #: mapping is flat on purpose — one dict per frame, no wrapper —
        #: because the per-message hot path (forwarded variables, frame
        #: reads in fragment bodies) lives and dies on these lookups.
        self.frames: Dict[FrameID, Dict[str, Any]] = {}
        #: deferred data forwards: dst host -> {(fid, var): (value, label)}.
        self.pending: Dict[str, Dict[Tuple[int, str], Tuple[Any, Label, FrameID]]] = {}
        if image is not None:
            #: entries this host serves, with precomputed invoker ACLs
            #: (shared, never mutated — every session reads one copy).
            self.entries: Dict[str, Fragment] = image.entries
            self.entry_acl: Dict[str, frozenset] = image.entry_acl
            #: per-entry dispatch table: entry -> (fragment, invoker ACL)
            #: so sync/rgoto validation is one dict probe instead of two.
            self._entry_table: Dict[str, Tuple[Fragment, frozenset]] = (
                image.entry_table
            )
            #: fields stored here: (cls, field, oid) -> value.
            self.field_store: Dict[Tuple[str, str, Optional[int]], Any] = dict(
                image.field_defaults
            )
        else:
            self.entries = {f.entry: f for f in split.fragments_on(name)}
            self.entry_acl = {
                entry: split.entry_invokers(entry) for entry in self.entries
            }
            self._entry_table = {
                entry: (fragment, self.entry_acl[entry])
                for entry, fragment in self.entries.items()
            }
            self.field_store = {}
            self._init_fields()
        #: cached program digest (checked on every remote request).
        self._digest = split.digest
        #: kind -> bound handler, replacing the if-chain in _dispatch.
        self._dispatch_table: Dict[str, Any] = {
            "getField": self._handle_get_field,
            "setField": self._handle_set_field,
            "forward": self._handle_forward,
            "sync": self._handle_sync,
            "rgoto": self._handle_rgoto,
            "lgoto": self._handle_lgoto,
            "recover": self._handle_recover,
        }
        #: latest recovery announcement (epoch, seq) seen per peer —
        #: lets stale re-deliveries of genuine announcements be no-ops.
        self.peer_epochs: Dict[str, Tuple[int, int]] = {}
        #: fragments lowered to closures (shared across hosts via the
        #: split program); None when REPRO_COMPILE=0 selects the
        #: tree-walking interpreter.
        self._compiled = (
            image.compiled
            if image is not None
            else (compile_split(split) if compilation_enabled() else None)
        )
        self.checkpoint_interval = checkpoint_interval
        #: stable storage (WAL + sealed checkpoints).  Only materialized
        #: under fault injection, so fault-free runs stay bit-identical
        #: to the Section 3.1 model — no WAL writes, no seal hashing.
        self.durable: Optional[DurableStore] = None
        network.register(
            name, self.handle, on_crash=self.crash_wipe, on_restart=self.recover
        )
        if network.faults is not None:
            self.ensure_durable()

    def _init_fields(self) -> None:
        for placement in self.split.fields_on(self.name):
            key = (placement.cls, placement.field, None)
            self.field_store[key] = placement.default_value()

    def reset(
        self,
        opt_level: int = 1,
        token_rng=None,
        checkpoint_interval: int = 4,
    ) -> None:
        """Reset-in-place to a freshly constructed host.

        Clears every piece of per-run mutable state — ICS slice, dedup
        table, field/array stores, frames, deferred forwards, durable
        store — while keeping the shared immutable artifacts (entries,
        ACLs, compiled fragments, the host key).  The session pool calls
        this instead of rebuilding the host, so recycling costs a few
        dict clears rather than reconstruction.
        """
        self.opt_level = opt_level
        self.factory.reset(rng=token_rng)
        # crash_wipe may have replaced the stack object; clear whichever
        # one is installed (handler registrations reference the host,
        # not the stack, so identity does not matter).
        self.stack._stack.clear()
        self._seen_requests.clear()
        image = self._image
        if image is not None:
            self.field_store = dict(image.field_defaults)
        else:
            self.field_store = {}
            self._init_fields()
        self.array_store.clear()
        self.array_meta.clear()
        self.frames.clear()
        self.pending.clear()
        self.peer_epochs.clear()
        self.checkpoint_interval = checkpoint_interval
        keep_durable = self.durable is not None and (
            self.network.faults is not None
            or self.durable.backend is not None
        )
        if keep_durable:
            # Recycle the stable-storage object in place (persistent
            # rows included): clear the WAL and counters, then seal a
            # fresh base checkpoint of the just-reset state.
            self.durable.reset(interval=checkpoint_interval)
            self.durable.take_checkpoint(self.snapshot_state())
        else:
            self.durable = None
            if self.network.faults is not None:
                self.ensure_durable()

    # ------------------------------------------------------------------
    # Frames
    # ------------------------------------------------------------------

    def frame(self, fid: FrameID) -> Dict[str, Any]:
        """The variable slots of frame ``fid`` (created on first touch)."""
        frame = self.frames.get(fid)
        if frame is None:
            frame = self.frames[fid] = {}
        return frame

    def var(self, fid: FrameID, name: str) -> Any:
        frame = self.frames.get(fid)
        if frame is None:
            frame = self.frames[fid] = {}
        value = frame.get(name, _UNSEEN)
        if value is not _UNSEEN:
            return value
        plan = self.split.methods[fid.method_key]
        return plan.default_value(name)

    def set_var(self, fid: FrameID, name: str, value: Any) -> None:
        frame = self.frames.get(fid)
        if frame is None:
            frame = self.frames[fid] = {}
        frame[name] = value
        if self.durable is not None:
            self.durable.log("var", fid, name, value)

    # ------------------------------------------------------------------
    # Incoming requests (Figure 6)
    # ------------------------------------------------------------------

    def handle(self, message: Message) -> Any:
        remote = message.src != self.name
        if remote:
            self.network.charge_check()
            if message.payload.get("digest") != self._digest:
                self.network.audit(
                    self.name, f"{message.kind} with mismatched program hash"
                )
                return self._reject(message)
            if message.msg_id is not None:
                # Reliable-delivery idempotency: a retransmission or
                # duplicate re-presents a processed key; answer from the
                # table instead of re-executing the request's effects.
                cached = self._seen_requests.get(message.msg_id, _UNSEEN)
                if cached is not _UNSEEN:
                    return cached
        handler = self._dispatch_table.get(message.kind)
        if handler is None:
            result = self._dispatch(message)  # audits the unknown kind
        else:
            result = handler(message)
        if remote:
            if message.msg_id is not None:
                # Write-ahead: the dedup entry must be durable before
                # the reply is released, or a crash + retransmission
                # would re-execute the request's effects (e.g. re-mint
                # a sync token and diverge from the fault-free run).
                self._seen_requests[message.msg_id] = result
                if self.durable is not None:
                    self.durable.log("seen", message.msg_id, result)
            if result is _REJECTED:
                return self._reject(message)
            if self.durable is not None:
                self._maybe_checkpoint()
        return result

    def _reject(self, message: Message) -> Any:
        """A validated-and-refused remote request: silently ignore it
        (Figure 6) — or, with the quarantine layer on, abort the run and
        blacklist the sender."""
        if self.network.quarantine_enabled:
            self.network.quarantine(
                message.src,
                self.name,
                f"{message.kind} from {message.src} rejected by {self.name}",
                message=message,
            )
        return _REJECTED

    def _dispatch(self, message: Message) -> Any:
        handler = self._dispatch_table.get(message.kind)
        if handler is None:
            self.network.audit(
                self.name, f"unknown request kind {message.kind!r}"
            )
            return _REJECTED
        return handler(message)

    def _handle_get_field(self, message: Message) -> Any:
        payload = message.payload
        if "array" in payload:
            return self._handle_get_element(message)
        key = (payload["cls"], payload["field"])
        placement = self.split.fields.get(key)
        if placement is None or placement.host != self.name:
            self.network.audit(self.name, f"getField for absent field {key}")
            return _REJECTED
        if message.src != self.name and message.src not in placement.readers:
            self.network.audit(
                self.name,
                f"getField {key} denied to {message.src}: "
                f"C(L_f) ⋢ C_{message.src}",
            )
            return _REJECTED
        store_key = (key[0], key[1], payload.get("oid"))
        if store_key not in self.field_store:
            self.field_store[store_key] = placement.default_value()
            if self.durable is not None:
                self.durable.log("field", store_key, self.field_store[store_key])
        value = self.field_store[store_key]
        if message.src != self.name:
            self.network.flow(placement.label, message.src)
        return value

    def _handle_get_element(self, message: Message) -> Any:
        payload = message.payload
        ref = payload["array"]
        if ref.oid not in self.array_store:
            self.network.audit(self.name, f"getField for absent array {ref}")
            return _REJECTED
        label = self.array_meta[ref.oid]
        requester = self.split.config.host(message.src)
        if message.src != self.name and not label.conf.flows_to(
            requester.conf, self.split.config.hierarchy
        ):
            self.network.audit(
                self.name,
                f"array read denied to {message.src}: C(L) ⋢ C_h",
            )
            return _REJECTED
        store = self.array_store[ref.oid]
        index = payload["idx"]
        if not 0 <= index < len(store):
            self.network.audit(
                self.name, f"array read out of bounds ({index})"
            )
            return _REJECTED
        if message.src != self.name:
            self.network.flow(label, message.src)
        return store[index]

    def _handle_set_element(self, message: Message) -> Any:
        payload = message.payload
        ref = payload["array"]
        if ref.oid not in self.array_store:
            self.network.audit(self.name, f"setField for absent array {ref}")
            return _REJECTED
        label = self.array_meta[ref.oid]
        sender = self.split.config.host(message.src)
        if message.src != self.name and not sender.integ.flows_to(
            label.integ, self.split.config.hierarchy
        ):
            self.network.audit(
                self.name,
                f"array write denied to {message.src}: I_h ⋢ I(L)",
            )
            return _REJECTED
        store = self.array_store[ref.oid]
        index = payload["idx"]
        if not 0 <= index < len(store):
            self.network.audit(
                self.name, f"array write out of bounds ({index})"
            )
            return _REJECTED
        store[index] = payload["value"]
        if self.durable is not None:
            self.durable.log("array_set", ref.oid, index, payload["value"])
        return True

    def _handle_set_field(self, message: Message) -> Any:
        payload = message.payload
        if "array" in payload:
            return self._handle_set_element(message)
        key = (payload["cls"], payload["field"])
        placement = self.split.fields.get(key)
        if placement is None or placement.host != self.name:
            self.network.audit(self.name, f"setField for absent field {key}")
            return _REJECTED
        if message.src != self.name and message.src not in placement.writers:
            self.network.audit(
                self.name,
                f"setField {key} denied to {message.src}: "
                f"I_{message.src} ⋢ I(L_f)",
            )
            return _REJECTED
        store_key = (key[0], key[1], payload.get("oid"))
        self.field_store[store_key] = payload["value"]
        if self.durable is not None:
            self.durable.log("field", store_key, payload["value"])
        return True

    def _handle_forward(self, message: Message) -> Any:
        """Apply forwarded frame variables after an integrity check.

        A denied variable rejects the request (the accepted ones are
        still applied — they passed their own checks); honest senders
        never mix the two."""
        accepted = True
        src = message.src
        remote = src != self.name
        # With a shared image the per-variable integrity check is a
        # precomputed set lookup: I_src ⊑ I(L_var) is static per split.
        image = self._image
        denied_pairs = (
            image.forward_denied.get(src)
            if image is not None and remote
            else None
        )
        if not remote or (
            denied_pairs is not None
            and not denied_pairs
            and src not in image.constant_denied
        ):
            # Fast path: nothing this sender forwards can be denied
            # (locally, or statically per the precomputed sets), so the
            # per-variable checks reduce to straight slot stores.
            frames = self.frames
            durable = self.durable
            for fid, var_values in message.payload["vars"].items():
                frame = frames.get(fid)
                if frame is None:
                    frame = frames[fid] = {}
                if durable is None:
                    frame.update(var_values)
                else:
                    for var, value in var_values.items():
                        frame[var] = value
                        durable.log("var", fid, var, value)
            return True
        for fid, var_values in message.payload["vars"].items():
            plan = self.split.methods[fid.method_key]
            for var, value in var_values.items():
                if remote:
                    if denied_pairs is not None:
                        denied = (fid.method_key, var) in denied_pairs or (
                            var not in plan.var_labels
                            and src in image.constant_denied
                        )
                    else:
                        label = plan.var_labels.get(var, Label.constant())
                        sender = self.split.config.host(src)
                        denied = not sender.integ.flows_to(
                            label.integ, self.split.config.hierarchy
                        )
                    if denied:
                        self.network.audit(
                            self.name,
                            f"forward of {var} denied from {src}: "
                            f"I_{src} ⋢ I(L_var)",
                        )
                        accepted = False
                        continue
                self.set_var(fid, var, value)
        return True if accepted else _REJECTED

    def _handle_sync(self, message: Message) -> Any:
        payload = message.payload
        entry = payload["entry"]
        info = self._entry_table.get(entry)
        if info is None:
            self.network.audit(self.name, f"sync for unknown entry {entry}")
            return _REJECTED
        if message.src != self.name and message.src not in info[1]:
            self.network.audit(
                self.name,
                f"sync {entry} denied to {message.src}: I_i ⋢ I_e",
            )
            return _REJECTED
        token = self.factory.mint(payload["frame"], entry)
        if message.src != self.name:
            self.network.charge_hash()
        self.stack.push(token, payload.get("token"))
        if self.durable is not None:
            self.durable.log("push", token, payload.get("token"))
        return token

    def _handle_rgoto(self, message: Message) -> Any:
        payload = message.payload
        entry = payload["entry"]
        info = self._entry_table.get(entry)
        if info is None:
            self.network.audit(self.name, f"rgoto to unknown entry {entry}")
            return _REJECTED
        if message.src != self.name and message.src not in info[1]:
            self.network.audit(
                self.name,
                f"rgoto {entry} denied to {message.src}: I_i ⋢ I_e "
                f"(I_e = {{{info[0].integ}}})",
            )
            return _REJECTED
        self._apply_payload_data(message)
        state = ExecutionState(entry, payload["frame"], payload.get("token"))
        self.run_chain(state)
        return True

    def _handle_lgoto(self, message: Message) -> Any:
        token: Token = message.payload["token"]
        if token.host != self.name:
            self.network.audit(
                self.name, f"lgoto with foreign token for {token.entry}"
            )
            return _REJECTED
        if message.src != self.name:
            # Tokens used locally are never hashed (Section 7.4), so only
            # remote presentations pay for MAC verification.
            if not self.factory.verify(token):
                self.network.audit(
                    self.name, f"lgoto with forged token for {token.entry}"
                )
                return _REJECTED
            self.network.charge_hash()
        popped = self.stack.pop_if_top(token)
        if popped is None:
            self.network.audit(
                self.name,
                f"lgoto with stale/replayed token for {token.entry}",
            )
            return _REJECTED
        if self.durable is not None:
            self.durable.log("pop")
        self._apply_payload_data(message)
        (previous,) = popped
        if previous is None:
            # The root capability: the program is complete.
            raise HaltSignal()
        state = ExecutionState(token.entry, token.frame, previous)
        self.run_chain(state)
        return True

    def _apply_payload_data(self, message: Message) -> None:
        vars_payload = message.payload.get("vars")
        if vars_payload:
            self._handle_forward(
                Message(
                    "forward",
                    message.src,
                    self.name,
                    {
                        "vars": vars_payload,
                        "digest": message.payload.get("digest"),
                    },
                )
            )

    def _handle_recover(self, message: Message) -> Any:
        """A peer announces it has recovered from a volatile crash.

        The announcement must be sealed by the recovering host itself
        and must actually come from that host — a bad host can neither
        fabricate an announcement for a live peer nor forge one without
        the peer's key.  Stale re-deliveries of genuine announcements
        (nested crashes, duplicated messages) are benign no-ops, never
        violations: an honest host must not get quarantined for
        retransmitting.
        """
        payload = message.payload
        src = message.src
        claimed = payload.get("host")
        if claimed != src:
            self.network.audit(
                self.name,
                f"recovery announcement for {claimed!r} sent by {src}",
            )
            return _REJECTED
        epoch = payload.get("epoch")
        seq = payload.get("seq")
        if not isinstance(epoch, int) or not isinstance(seq, int):
            self.network.audit(
                self.name, f"malformed recovery announcement from {src}"
            )
            return _REJECTED
        if not self.factory.verify_seal(
            src, "recover", recovery_blob(src, epoch, seq), payload.get("seal")
        ):
            self.network.audit(
                self.name, f"forged recovery seal from {src}"
            )
            return _REJECTED
        self.network.charge_hash()
        last = self.peer_epochs.get(src)
        if last is not None and (epoch, seq) <= last:
            return True
        self.peer_epochs[src] = (epoch, seq)
        if self.durable is not None:
            self.durable.log("peer_epoch", src, (epoch, seq))
        self._reforward_pending(src)
        return True

    def _reforward_pending(self, target: str) -> None:
        """Re-flush deferred forwards to a freshly recovered peer.

        The values are the same ones a later control transfer would have
        carried (deferred forwards are computed at defer time), so
        sending them early cannot change any final field or variable —
        it just guarantees the recovered host is not waiting on data.
        """
        slots = self.pending.get(target)
        if not slots:
            return
        vars_payload: Dict[FrameID, Dict[str, Any]] = {}
        labels = []
        for (fid_num, var), (value, label, fid) in slots.items():
            vars_payload.setdefault(fid, {})[var] = value
            labels.append(label)
            self.network.flow(label, target)
        slots.clear()
        if self.durable is not None:
            self.durable.log("pending_clear", target)
        self.network.request(
            Message(
                "forward",
                self.name,
                target,
                {"vars": vars_payload, "digest": self.split.digest},
                data_labels=labels,
            )
        )

    # ------------------------------------------------------------------
    # Crash recovery (durable store, checkpoints, WAL replay)
    # ------------------------------------------------------------------

    def ensure_durable(self) -> DurableStore:
        """The host's stable storage, materialized on first use with a
        sealed checkpoint of the current state."""
        if self.durable is None:
            self.durable = DurableStore(
                self.name, self.factory, interval=self.checkpoint_interval
            )
            self.durable.take_checkpoint(self.snapshot_state())
        return self.durable

    def take_checkpoint(self):
        """Seal the current state as a new checkpoint (compacts the WAL)."""
        store = self.ensure_durable()
        checkpoint = store.take_checkpoint(self.snapshot_state())
        # Checkpoint trace events belong to the fault-injection trace;
        # a persistent backend alone checkpoints silently so that
        # storage-backed fault-free runs keep an empty event log.
        if self.network.faults is not None:
            self.network._emit(
                "checkpoint", None, self.name,
                f"epoch {checkpoint.epoch} sealed, WAL compacted",
            )
        return checkpoint

    def attach_storage(self, storage) -> None:
        """Wire this host's durable store to ``storage``'s persistent
        tier (a :class:`~repro.runtime.storage.sqlite_backend.
        SessionStorage`), materializing the store if needed and
        publishing the current checkpoint + WAL through the backend."""
        backend = storage.backend_for(self.name)
        if self.durable is None:
            self.durable = DurableStore(
                self.name, self.factory, interval=self.checkpoint_interval,
                backend=backend,
            )
            self.durable.take_checkpoint(self.snapshot_state())
        else:
            self.durable.backend = backend
            self.durable.republish()

    def detach_storage(self) -> None:
        """Drop the persistent tier (degradation or explicit detach);
        the in-memory store keeps running fail-closed."""
        if self.durable is not None:
            self.durable.backend = None

    def _maybe_checkpoint(self) -> None:
        store = self.durable
        store.processed += 1
        if store.processed >= store.interval:
            self.take_checkpoint()

    def snapshot_state(self) -> Dict[str, Any]:
        """A copy of everything a bit-identical recovery must restore."""
        return copy_state(
            {
                "fields": self.field_store,
                "arrays": self.array_store,
                "array_meta": self.array_meta,
                "frames": self.frames,
                "stack": self.stack._stack,
                "seen": self._seen_requests,
                "pending": self.pending,
                "peer_epochs": self.peer_epochs,
            }
        )

    def crash_wipe(self) -> None:
        """A volatile-state crash: everything outside the durable store
        is lost.  Keys (the token factory) model secure hardware and the
        program text is re-read from the split, so both survive."""
        self.stack = LocalStack()
        self._seen_requests = {}
        self.field_store = {}
        self.array_store = {}
        self.array_meta = {}
        self.frames = {}
        self.pending = {}
        self.peer_epochs = {}

    def recover(self) -> None:
        """Restart after a volatile crash: verify + install the sealed
        checkpoint, replay the WAL, and announce the recovery.

        Tampered stable storage (forged seal, rolled-back epoch) fails
        closed with :class:`~repro.runtime.network.SecurityAbort` —
        running from forged state would hand the storage attacker the
        host's integrity.
        """
        store = self.durable
        if store is None:
            return
        try:
            state, wal = store.load()
        except CheckpointTamperError as error:
            self.network.audit(self.name, str(error))
            self.network._emit("quarantine", None, self.name, str(error))
            raise SecurityAbort(None, self.name, str(error)) from error
        self._install_state(state)
        for entry in wal:
            self._replay(entry)
        store.recoveries += 1
        self.network._emit(
            "recover", None, self.name,
            f"epoch {store.high_water} + {len(wal)} WAL entries "
            f"(recovery #{store.recoveries})",
        )
        self._announce_recovery()

    def _install_state(self, state: Dict[str, Any]) -> None:
        self.field_store = state["fields"]
        self.array_store = state["arrays"]
        self.array_meta = state["array_meta"]
        self.frames = state["frames"]
        stack = LocalStack()
        stack._stack = list(state["stack"])
        self.stack = stack
        self._seen_requests = state["seen"]
        self.pending = state["pending"]
        self.peer_epochs = state["peer_epochs"]

    def _replay(self, entry: Tuple) -> None:
        """Re-apply one WAL record (state mutations only — no messages
        are sent and no charges accrue; the effects already happened
        before the crash)."""
        op = entry[0]
        if op == "var":
            _, fid, name, value = entry
            self.frame(fid)[name] = value
        elif op == "field":
            self.field_store[entry[1]] = entry[2]
        elif op == "array_new":
            _, oid, length, label = entry
            self.array_store[oid] = [0] * length
            self.array_meta[oid] = label
        elif op == "array_set":
            self.array_store[entry[1]][entry[2]] = entry[3]
        elif op == "push":
            self.stack.push(entry[1], entry[2])
        elif op == "pop":
            self.stack._stack.pop()
        elif op == "seen":
            self._seen_requests[entry[1]] = entry[2]
        elif op == "pending":
            _, target, slot, value, label, fid = entry
            self.pending.setdefault(target, {})[slot] = (value, label, fid)
        elif op == "pending_clear":
            self.pending.get(entry[1], {}).clear()
        elif op == "peer_epoch":
            self.peer_epochs[entry[1]] = entry[2]
        else:
            raise AssertionError(f"unknown WAL record {entry!r}")

    def _announce_recovery(self) -> None:
        """Broadcast a sealed ``recover`` message so peers re-forward
        pending data and accept the host back into the run."""
        store = self.durable
        # Snapshot epoch/seq: announcing to one peer can trigger
        # re-forwards back to us, and handling those may seal a fresh
        # checkpoint — the remaining peers must still get the payload
        # the seal actually covers.
        epoch, seq = store.high_water, store.recoveries
        seal = self.factory.seal(
            "recover", recovery_blob(self.name, epoch, seq)
        )
        for descriptor in self.split.config.hosts:
            peer = descriptor.name
            if peer == self.name:
                continue
            self.network.request(
                Message(
                    "recover",
                    self.name,
                    peer,
                    {
                        "host": self.name,
                        "epoch": epoch,
                        "seq": seq,
                        "seal": seal,
                        "digest": self.split.digest,
                    },
                )
            )

    def adopt_root(self, token: Token) -> None:
        """Install the root capability t0 (WAL-logged like any push, so
        a crash before the first checkpoint still recovers it)."""
        self.stack.push(token, None)
        if self.durable is not None:
            self.durable.log("push", token, None)

    # ------------------------------------------------------------------
    # Fragment execution
    # ------------------------------------------------------------------

    def run_chain(self, state: ExecutionState) -> None:
        """Execute fragments locally until control leaves this host.

        Uses the compiled fragment bodies when available (the default);
        ``REPRO_COMPILE=0`` selects the tree-walking interpreter below.
        Both paths charge identical simulated ops, so message counts and
        simulated times never depend on the mode.
        """
        compiled = self._compiled
        if compiled is None:
            return self._run_chain_interpreted(state)
        charge_ops = self.network.charge_ops
        heat = compiled.heat
        while True:
            entry = state.entry
            fragment = compiled.get(entry)
            if fragment is None:
                # Tiered execution: interpret a fragment's first run,
                # compile it the moment it turns out to be re-entered
                # (loops, repeated calls).  One-shot fragments — the
                # common case in straight-line code — never pay closure
                # construction.
                count = heat.get(entry, 0) + 1
                if count >= 2:
                    fragment = compiled[entry] = CompiledFragment(
                        self.split.fragments[entry]
                    )
                else:
                    heat[entry] = count
                    source = self.split.fragments[entry]
                    assert source.host == self.name, (
                        f"{self.name} asked to run {entry}"
                    )
                    charge_ops(len(source.ops) + 1)
                    for op in source.ops:
                        self._run_op(op, state)
                    next_state = self._run_terminator(source, state)
                    if next_state is None:
                        return
                    state = next_state
                    continue
            assert fragment.host == self.name, (
                f"{self.name} asked to run {entry}"
            )
            charge_ops(fragment.charge)
            for op_fn in fragment.ops:
                op_fn(self, state)
            next_state = fragment.terminator(self, state)
            if next_state is None:
                return
            state = next_state

    def _run_chain_interpreted(self, state: ExecutionState) -> None:
        """The original interpreter loop (REPRO_COMPILE=0)."""
        while True:
            fragment = self.split.fragments[state.entry]
            assert fragment.host == self.name, (
                f"{self.name} asked to run {state.entry}"
            )
            self.network.charge_ops(len(fragment.ops) + 1)
            for op in fragment.ops:
                self._run_op(op, state)
            next_state = self._run_terminator(fragment, state)
            if next_state is None:
                return
            state = next_state

    def _run_op(self, op, state: ExecutionState) -> None:
        if isinstance(op, OpAssignVar):
            self.set_var(state.frame, op.var, self.eval(op.expr, state.frame))
        elif isinstance(op, OpSetField):
            value = self.eval(op.expr, state.frame)
            oid = None
            if op.obj is not None:
                ref = self.eval(op.obj, state.frame)
                if ref is None:
                    raise RuntimeError("null dereference in field write")
                oid = ref.oid
            self.write_field(op.cls, op.field, oid, value)
        elif isinstance(op, OpSetElem):
            ref = self.eval(op.array, state.frame)
            index = self.eval(op.index, state.frame)
            value = self.eval(op.expr, state.frame)
            self.write_element(ref, index, value)
        elif isinstance(op, OpForward):
            value = self.var(state.frame, op.var)
            plan = self.split.methods[state.frame.method_key]
            label = plan.var_labels.get(op.var, Label.constant())
            slot = (state.frame.fid, op.var)
            for target in op.hosts:
                if target == self.name:
                    continue
                self.defer_forward(target, slot, value, label, state.frame)
            if self.opt_level == 0:
                self.flush_forwards(piggyback_for=None)
        else:
            raise AssertionError(f"unknown op {op!r}")

    # -- data forwarding ----------------------------------------------------------

    def defer_forward(
        self, target: str, slot: Tuple[int, str], value: Any, label: Label,
        frame: FrameID,
    ) -> None:
        """Defer a data forward to ``target`` (WAL-logged)."""
        self.pending.setdefault(target, {})[slot] = (value, label, frame)
        if self.durable is not None:
            self.durable.log("pending", target, slot, value, label, frame)

    def flush_forwards(
        self, piggyback_for: Optional[str]
    ) -> Optional[Dict[FrameID, Dict[str, Any]]]:
        """Send all deferred forwards; values destined to
        ``piggyback_for`` are returned for inclusion in the transfer
        message instead of being sent separately."""
        # Fast exit for the common chain with nothing deferred: the
        # per-target slot dicts stay allocated after a flush (replay
        # bookkeeping keys on them), so test emptiness, not key count.
        if not any(self.pending.values()):
            return None
        piggyback: Optional[Dict[FrameID, Dict[str, Any]]] = None
        for target in sorted(self.pending):
            slots = self.pending[target]
            if not slots:
                continue
            if target == piggyback_for and self.opt_level >= 1:
                piggyback = {}
                for (fid_num, var), (value, label, fid) in slots.items():
                    piggyback.setdefault(fid, {})[var] = value
                    self.network.flow(label, target)
                self.network.note_eliminated(len(slots))
                slots.clear()
                if self.durable is not None:
                    self.durable.log("pending_clear", target)
                continue
            vars_payload: Dict[FrameID, Dict[str, Any]] = {}
            labels = []
            for (fid_num, var), (value, label, fid) in slots.items():
                vars_payload.setdefault(fid, {})[var] = value
                labels.append(label)
                self.network.flow(label, target)
            if self.opt_level >= 1 and len(slots) > 1:
                self.network.note_eliminated(len(slots) - 1)
            message = Message(
                "forward",
                self.name,
                target,
                {"vars": vars_payload, "digest": self.split.digest},
                data_labels=labels,
            )
            slots.clear()
            if self.durable is not None:
                self.durable.log("pending_clear", target)
            if self.opt_level >= 2:
                # The paper's proposed (unimplemented) optimization:
                # forwards need no acknowledgment.
                self.network.one_way(message)
            else:
                self.network.request(message)
        return piggyback

    # -- terminators ---------------------------------------------------------------

    def _run_terminator(
        self, fragment: Fragment, state: ExecutionState
    ) -> Optional[ExecutionState]:
        terminator = fragment.terminator
        if isinstance(terminator, TermJump):
            return self._run_plan(terminator.plan, state)
        if isinstance(terminator, TermBranch):
            cond = self.eval(terminator.cond, state.frame)
            plan = terminator.plan_true if cond else terminator.plan_false
            return self._run_plan(plan, state)
        if isinstance(terminator, TermCall):
            return self._run_call(terminator, state)
        if isinstance(terminator, TermReturn):
            return self._run_return(terminator, state)
        if isinstance(terminator, TermHalt):
            raise HaltSignal()
        raise AssertionError(f"unknown terminator {terminator!r}")

    def _run_plan(
        self, plan: List[EdgeAction], state: ExecutionState
    ) -> Optional[ExecutionState]:
        token = state.token
        for action in plan:
            if action.kind == "local":
                state.entry = action.entry
                state.token = token
                return state
            if action.kind == "sync":
                token = self._do_sync(action.entry, state.frame, token)
                if token is None:
                    return None
            elif action.kind == "rgoto":
                self._do_rgoto(action.entry, state.frame, token)
                return None
            elif action.kind == "lgoto":
                self._do_lgoto(token)
                return None
            elif action.kind == "halt":
                raise HaltSignal()
        return None

    def _do_sync(
        self, entry: str, frame: FrameID, token: Optional[Token]
    ) -> Optional[Token]:
        target_host = self.split.entry_host(entry)
        if target_host == self.name and entry in self._entry_table:
            # Local sync fast path: a request to ourselves never touches
            # the network (no counts, no charges — the general path's
            # src == dst case), the entry is ours, and the ACL cannot
            # deny the host itself, so this is exactly _handle_sync
            # minus the Message round trip.
            minted = self.factory.mint(frame, entry)
            self.stack.push(minted, token)
            if self.durable is not None:
                self.durable.log("push", minted, token)
            return minted
        message = Message(
            "sync",
            self.name,
            target_host,
            {
                "entry": entry,
                "frame": frame,
                "token": token,
                "digest": self.split.digest,
            },
        )
        result = self.network.request(message)
        if result is _REJECTED:
            self.network.audit(self.name, f"sync to {entry} was rejected")
            return None
        return result

    def _do_rgoto(
        self, entry: str, frame: FrameID, token: Optional[Token],
        extra_vars: Optional[Dict[FrameID, Dict[str, Any]]] = None,
    ) -> None:
        target_host = self.split.entry_host(entry)
        piggyback = self.flush_forwards(piggyback_for=target_host)
        vars_payload = piggyback or {}
        if extra_vars:
            for fid, values in extra_vars.items():
                vars_payload.setdefault(fid, {}).update(values)
        message = Message(
            "rgoto",
            self.name,
            target_host,
            {
                "entry": entry,
                "frame": frame,
                "token": token,
                "vars": vars_payload,
                "digest": self.split.digest,
            },
        )
        self.network.post(message)

    def _do_lgoto(
        self, token: Optional[Token],
        extra_vars: Optional[Dict[FrameID, Dict[str, Any]]] = None,
    ) -> None:
        if token is None:
            raise HaltSignal()
        piggyback = self.flush_forwards(piggyback_for=token.host)
        vars_payload = piggyback or {}
        if extra_vars:
            for fid, values in extra_vars.items():
                vars_payload.setdefault(fid, {}).update(values)
        message = Message(
            "lgoto",
            self.name,
            token.host,
            {
                "token": token,
                "vars": vars_payload,
                "digest": self.split.digest,
            },
        )
        self.network.post(message)

    def _run_call(
        self, terminator: TermCall, state: ExecutionState
    ) -> Optional[ExecutionState]:
        # Evaluate arguments in the caller's frame.
        arg_values = {
            param: self.eval(expr, state.frame)
            for param, expr in terminator.args
        }
        return self._finish_call(terminator, state, arg_values)

    def _finish_call(
        self,
        terminator: TermCall,
        state: ExecutionState,
        arg_values: Dict[str, Any],
    ) -> Optional[ExecutionState]:
        """Everything after argument evaluation (shared with the
        compiled terminator closures)."""
        # Sync the continuation on this host (a local ICS push).
        cont_token = self._do_sync(
            terminator.cont_entry, state.frame, state.token
        )
        if cont_token is None:
            return None
        callee_frame = FrameID(terminator.callee_key)
        callee_host = self.split.entry_host(terminator.callee_entry)
        plan = self.split.methods[terminator.callee_key]
        # Route each argument directly to the hosts that read the
        # parameter — not to hosts that merely run other callee code.
        rgoto_payload: Dict[str, Any] = {}
        for param, value in arg_values.items():
            label = plan.var_labels.get(param, Label.constant())
            for target in terminator.arg_hosts.get(param, ()):
                if target == self.name:
                    self.set_var(callee_frame, param, value)
                elif target == callee_host:
                    rgoto_payload[param] = value
                    self.network.flow(label, target)
                else:
                    self.defer_forward(
                        target, (callee_frame.fid, param), value, label,
                        callee_frame,
                    )
        if callee_host == self.name:
            for param, value in rgoto_payload.items():
                self.set_var(callee_frame, param, value)
            return ExecutionState(
                terminator.callee_entry, callee_frame, cont_token
            )
        self._do_rgoto(
            terminator.callee_entry,
            callee_frame,
            cont_token,
            extra_vars={callee_frame: rgoto_payload} if rgoto_payload else None,
        )
        return None

    def _run_return(
        self, terminator: TermReturn, state: ExecutionState
    ) -> Optional[ExecutionState]:
        value = (
            self.eval(terminator.expr, state.frame)
            if terminator.expr is not None
            else None
        )
        return self._finish_return(state, value)

    def _finish_return(
        self, state: ExecutionState, value: Any
    ) -> Optional[ExecutionState]:
        """Everything after evaluating the return expression (shared
        with the compiled terminator closures)."""
        token = state.token
        if token is None:
            raise HaltSignal()
        # The whole return route is static per continuation entry: the
        # capability names the caller's host and frame, the split program
        # names the result variable and the hosts that consume it.
        result_var, result_hosts = self.split.cont_result(token.entry)
        retval_payload: Optional[Dict[FrameID, Dict[str, Any]]] = None
        if result_var is not None and value is not None:
            plan = self.split.methods[token.frame.method_key]
            label = plan.var_labels.get(result_var, Label.constant())
            for target in result_hosts:
                if target == self.name:
                    self.set_var(token.frame, result_var, value)
                elif self.opt_level >= 2 and target == token.host:
                    # Piggyback the return value on the lgoto (the
                    # paper's proposed optimization).
                    retval_payload = {token.frame: {result_var: value}}
                    self.network.flow(label, target)
                    self.network.note_eliminated(1)
                else:
                    self.network.flow(label, target)
                    self.network.request(
                        Message(
                            "forward",
                            self.name,
                            target,
                            {
                                "vars": {token.frame: {result_var: value}},
                                "digest": self.split.digest,
                            },
                            data_labels=[label],
                        )
                    )
        if token.host == self.name:
            # A local return: pop our own stack directly; deferred
            # forwards keep riding until control actually leaves.
            popped = self.stack.pop_if_top(token)
            if popped is None:
                self.network.audit(self.name, "local lgoto with stale token")
                return None
            if self.durable is not None:
                self.durable.log("pop")
            (previous,) = popped
            if previous is None:
                raise HaltSignal()
            return ExecutionState(token.entry, token.frame, previous)
        self._do_lgoto(token, extra_vars=retval_payload)
        return None

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------

    def eval(self, expr: ir.IRExpr, frame: FrameID) -> Any:
        if isinstance(expr, ir.Const):
            return expr.value
        if isinstance(expr, ir.VarUse):
            return self.var(frame, expr.name)
        if isinstance(expr, ir.FieldUse):
            oid = None
            if expr.obj is not None:
                ref = self.eval(expr.obj, frame)
                if ref is None:
                    raise RuntimeError("null dereference in field read")
                oid = ref.oid
            return self.read_field(expr.cls, expr.field, oid)
        if isinstance(expr, ir.BinOp):
            return self._eval_binop(expr, frame)
        if isinstance(expr, ir.UnOp):
            operand = self.eval(expr.operand, frame)
            return (not operand) if expr.op == "!" else (-operand)
        if isinstance(expr, ir.NewObj):
            return ObjectRef(expr.cls)
        if isinstance(expr, ir.NewArr):
            length = self.eval(expr.length, frame)
            return self.alloc_array(length, expr.label)
        if isinstance(expr, ir.ArrayUse):
            ref = self.eval(expr.array, frame)
            index = self.eval(expr.index, frame)
            return self.read_element(ref, index)
        if isinstance(expr, ir.ArrayLen):
            ref = self.eval(expr.array, frame)
            if ref is None:
                raise RuntimeError("null dereference in array length")
            return ref.length
        if isinstance(expr, ir.DowngradeExpr):
            # declassify/endorse have no run-time cost (Section 2.2).
            return self.eval(expr.inner, frame)
        raise AssertionError(f"unknown expression {expr!r}")

    # ------------------------------------------------------------------
    # Array element access (counted as getField/setField, like the
    # paper's run-time array support)
    # ------------------------------------------------------------------

    def alloc_array(self, length: int, label: Label) -> ArrayRef:
        """Allocate a local array (WAL-logged so recovery re-creates it
        under the same oid)."""
        ref = ArrayRef(length, self.name, label)
        self.array_store[ref.oid] = [0] * length
        self.array_meta[ref.oid] = label
        if self.durable is not None:
            self.durable.log("array_new", ref.oid, length, label)
        return ref

    def read_element(self, ref, index: int) -> Any:
        if ref is None:
            raise RuntimeError("null dereference in array read")
        if ref.host == self.name:
            store = self.array_store[ref.oid]
            if not 0 <= index < len(store):
                raise RuntimeError(
                    f"array index {index} out of bounds [0, {len(store)})"
                )
            return store[index]
        result = self.network.request(
            Message(
                "getField",
                self.name,
                ref.host,
                {"array": ref, "idx": index, "digest": self.split.digest},
                data_labels=[ref.label],
            )
        )
        if result is _REJECTED:
            raise RuntimeError(f"array read rejected for {self.name}")
        return result

    def write_element(self, ref, index: int, value: Any) -> None:
        if ref is None:
            raise RuntimeError("null dereference in array write")
        if ref.host == self.name:
            store = self.array_store[ref.oid]
            if not 0 <= index < len(store):
                raise RuntimeError(
                    f"array index {index} out of bounds [0, {len(store)})"
                )
            store[index] = value
            if self.durable is not None:
                self.durable.log("array_set", ref.oid, index, value)
            return
        self.network.flow(ref.label, ref.host)
        result = self.network.request(
            Message(
                "setField",
                self.name,
                ref.host,
                {"array": ref, "idx": index, "value": value,
                 "digest": self.split.digest},
            )
        )
        if result is _REJECTED:
            raise RuntimeError(f"array write rejected for {self.name}")

    def _eval_binop(self, expr: ir.BinOp, frame: FrameID) -> Any:
        op = expr.op
        left = self.eval(expr.left, frame)
        if op == "&&":
            return bool(left) and bool(self.eval(expr.right, frame))
        if op == "||":
            return bool(left) or bool(self.eval(expr.right, frame))
        right = self.eval(expr.right, frame)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            # Java semantics: truncate toward zero.
            quotient = abs(left) // abs(right)
            return quotient if (left >= 0) == (right >= 0) else -quotient
        if op == "%":
            return left - (self._eval_div(left, right)) * right
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise AssertionError(f"unknown operator {op!r}")

    @staticmethod
    def _eval_div(left: int, right: int) -> int:
        quotient = abs(left) // abs(right)
        return quotient if (left >= 0) == (right >= 0) else -quotient

    # ------------------------------------------------------------------
    # Field access
    # ------------------------------------------------------------------

    def read_field(self, cls: str, field: str, oid: Optional[int]) -> Any:
        placement = self.split.fields[(cls, field)]
        if placement.host == self.name:
            store_key = (cls, field, oid)
            if store_key not in self.field_store:
                self.field_store[store_key] = placement.default_value()
                if self.durable is not None:
                    self.durable.log(
                        "field", store_key, self.field_store[store_key]
                    )
            return self.field_store[store_key]
        result = self.network.request(
            Message(
                "getField",
                self.name,
                placement.host,
                {"cls": cls, "field": field, "oid": oid,
                 "digest": self.split.digest},
                data_labels=[placement.label],
            )
        )
        if result is _REJECTED:
            raise RuntimeError(
                f"getField {cls}.{field} rejected for {self.name}"
            )
        return result

    def write_field(
        self, cls: str, field: str, oid: Optional[int], value: Any
    ) -> None:
        placement = self.split.fields[(cls, field)]
        if placement.host == self.name:
            self.field_store[(cls, field, oid)] = value
            if self.durable is not None:
                self.durable.log("field", (cls, field, oid), value)
            return
        self.network.flow(placement.label, placement.host)
        result = self.network.request(
            Message(
                "setField",
                self.name,
                placement.host,
                {"cls": cls, "field": field, "oid": oid, "value": value,
                 "digest": self.split.digest},
            )
        )
        if result is _REJECTED:
            raise RuntimeError(
                f"setField {cls}.{field} rejected for {self.name}"
            )
