"""Fault injection for the simulated network.

The paper's runtime assumes reliable, in-order SSL channels (Section
3.1).  This module drops that assumption in a controlled way: a
:class:`FaultInjector` — driven entirely by a seeded RNG, so every fault
schedule is reproducible from its seed — decides, per delivery attempt,
whether a message is lost, duplicated, reordered, delayed, or whether
the destination host crashes on receipt.  The reliable-delivery layer
in :mod:`repro.runtime.network` (sequence numbers, ack/retry with
exponential backoff, receiver-side idempotency) masks these faults or
fails closed with :class:`~repro.runtime.network.DeliveryTimeoutError`.

The fault model is fail-stop with durable state: a crashed host loses
messages in flight but recovers its fields, frames, ICS slice, and
duplicate-suppression table from stable storage.  Byzantine behaviour is
a different adversary, already modelled by :mod:`repro.runtime.attacks`.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional


class FaultPolicy:
    """Knobs for the fault injector.  All probabilities are per event.

    * ``drop_prob`` — chance each transmitted copy (request, reply, or
      control message) is lost in transit;
    * ``duplicate_prob`` — chance a delivered message arrives twice;
    * ``reorder_prob`` — chance a control message is inserted out of
      order into the destination's inbox;
    * ``jitter_max`` — extra one-way delay, uniform in [0, jitter_max];
    * ``crash_prob`` — chance the destination host fail-stops on
      receipt (the message is lost);
    * ``crash_downtime`` — simulated seconds before the crashed host
      restarts;
    * ``max_crashes`` — total crash budget across the run (``None`` for
      unlimited), which keeps schedules from livelocking a run;
    * ``crashable_hosts`` — restrict crashes to these hosts (``None``
      means any host may crash).
    """

    def __init__(
        self,
        drop_prob: float = 0.0,
        duplicate_prob: float = 0.0,
        reorder_prob: float = 0.0,
        jitter_max: float = 0.0,
        crash_prob: float = 0.0,
        crash_downtime: float = 2e-3,
        max_crashes: Optional[int] = None,
        crashable_hosts: Optional[Iterable[str]] = None,
    ) -> None:
        for name, p in (
            ("drop_prob", drop_prob),
            ("duplicate_prob", duplicate_prob),
            ("reorder_prob", reorder_prob),
            ("crash_prob", crash_prob),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.drop_prob = drop_prob
        self.duplicate_prob = duplicate_prob
        self.reorder_prob = reorder_prob
        self.jitter_max = jitter_max
        self.crash_prob = crash_prob
        self.crash_downtime = crash_downtime
        self.max_crashes = max_crashes
        self.crashable_hosts = (
            frozenset(crashable_hosts) if crashable_hosts is not None else None
        )

    def __repr__(self) -> str:
        return (
            f"FaultPolicy(drop={self.drop_prob:.3f}, "
            f"dup={self.duplicate_prob:.3f}, "
            f"reorder={self.reorder_prob:.3f}, "
            f"jitter={self.jitter_max:.2e}, "
            f"crash={self.crash_prob:.3f})"
        )


class RetryPolicy:
    """Ack/retry parameters of the reliable-delivery layer.

    The sender retransmits after ``base_timeout`` simulated seconds,
    doubling (``backoff``) on every further attempt, and gives up —
    failing closed — after ``max_retries`` retransmissions.
    """

    def __init__(
        self,
        base_timeout: float = 2e-3,
        backoff: float = 2.0,
        max_retries: int = 12,
    ) -> None:
        if base_timeout <= 0:
            raise ValueError("base_timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.base_timeout = base_timeout
        self.backoff = backoff
        self.max_retries = max_retries

    def timeout(self, attempt: int) -> float:
        """Retransmission timer after the ``attempt``-th failed send."""
        return self.base_timeout * (self.backoff ** attempt)


class FaultInjector:
    """Seeded source of fault decisions; owns the crash/restart state."""

    def __init__(
        self, policy: Optional[FaultPolicy] = None, seed: int = 0
    ) -> None:
        self.policy = policy or FaultPolicy()
        self.seed = seed
        self.rng = random.Random(seed)
        #: host -> simulated time at which it comes back up.
        self.down_until: Dict[str, float] = {}
        self.crashes = 0

    # -- per-delivery decisions ----------------------------------------------

    def should_drop(self) -> bool:
        p = self.policy.drop_prob
        return bool(p) and self.rng.random() < p

    def should_duplicate(self) -> bool:
        p = self.policy.duplicate_prob
        return bool(p) and self.rng.random() < p

    def jitter(self) -> float:
        j = self.policy.jitter_max
        return self.rng.uniform(0.0, j) if j else 0.0

    def reorder_slot(self, queue_len: int) -> Optional[int]:
        """Index to insert a control message at, or None to append."""
        p = self.policy.reorder_prob
        if queue_len and p and self.rng.random() < p:
            return self.rng.randrange(queue_len + 1)
        return None

    # -- crash / restart -----------------------------------------------------

    def maybe_crash(self, host: str, clock: float) -> bool:
        """Roll for a fail-stop of ``host`` at time ``clock``."""
        policy = self.policy
        if not policy.crash_prob:
            return False
        if policy.max_crashes is not None and self.crashes >= policy.max_crashes:
            return False
        if (
            policy.crashable_hosts is not None
            and host not in policy.crashable_hosts
        ):
            return False
        if self.rng.random() >= policy.crash_prob:
            return False
        self.crashes += 1
        self.down_until[host] = clock + policy.crash_downtime
        return True

    def is_down(self, host: str, clock: float) -> bool:
        until = self.down_until.get(host)
        return until is not None and clock < until

    def check_restart(self, host: str, clock: float) -> bool:
        """True exactly once per crash, when the downtime has elapsed."""
        until = self.down_until.get(host)
        if until is not None and clock >= until:
            del self.down_until[host]
            return True
        return False
