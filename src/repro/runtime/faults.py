"""Fault injection for the simulated network.

The paper's runtime assumes reliable, in-order SSL channels (Section
3.1).  This module drops that assumption in a controlled way: a
:class:`FaultInjector` — driven entirely by a seeded RNG, so every fault
schedule is reproducible from its seed — decides, per delivery attempt,
whether a message is lost, duplicated, reordered, delayed, or whether
the destination host crashes on receipt.  The reliable-delivery layer
in :mod:`repro.runtime.network` (sequence numbers, ack/retry with
exponential backoff, receiver-side idempotency) masks these faults or
fails closed with :class:`~repro.runtime.network.DeliveryTimeoutError`.

Crashes are fail-stop and come in two state models (``crash_mode``):

* ``"durable"`` — the original model: a crashed host loses messages in
  flight but keeps its fields, frames, ICS slice, and
  duplicate-suppression table across the restart, as if every mutation
  hit stable storage synchronously.
* ``"volatile"`` — the realistic model: a crash wipes all of that, and
  the restarted host must rebuild its state from its
  :class:`~repro.runtime.checkpoint.DurableStore` (sealed checkpoint +
  write-ahead-log replay) and announce its recovery to the other hosts.

Besides the probabilistic :class:`FaultInjector`, the deterministic
:class:`CrashPointInjector` crashes one chosen host at one chosen
message-receipt boundary — the building block of the crash-point sweep
(:func:`repro.runtime.faultsweep.crash_point_sweep`), which proves
recovery works at *every* boundary, not just the ones a random schedule
happens to hit.  Byzantine behaviour is a different adversary, already
modelled by :mod:`repro.runtime.attacks`.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional


class FaultPolicy:
    """Knobs for the fault injector.  All probabilities are per event.

    * ``drop_prob`` — chance each transmitted copy (request, reply, or
      control message) is lost in transit;
    * ``duplicate_prob`` — chance a delivered message arrives twice;
    * ``reorder_prob`` — chance a control message is inserted out of
      order into the destination's inbox;
    * ``jitter_max`` — extra one-way delay, uniform in [0, jitter_max];
    * ``crash_prob`` — chance the destination host fail-stops on
      receipt (the message is lost);
    * ``crash_downtime`` — simulated seconds before the crashed host
      restarts;
    * ``max_crashes`` — total crash budget across the run (``None`` for
      unlimited), which keeps schedules from livelocking a run;
    * ``crashable_hosts`` — restrict crashes to these hosts (``None``
      means any host may crash);
    * ``crash_mode`` — ``"durable"`` (state survives the restart) or
      ``"volatile"`` (a crash wipes the host; it recovers from its
      sealed checkpoint + WAL and announces the recovery).
    """

    def __init__(
        self,
        drop_prob: float = 0.0,
        duplicate_prob: float = 0.0,
        reorder_prob: float = 0.0,
        jitter_max: float = 0.0,
        crash_prob: float = 0.0,
        crash_downtime: float = 2e-3,
        max_crashes: Optional[int] = None,
        crashable_hosts: Optional[Iterable[str]] = None,
        crash_mode: str = "durable",
    ) -> None:
        for name, p in (
            ("drop_prob", drop_prob),
            ("duplicate_prob", duplicate_prob),
            ("reorder_prob", reorder_prob),
            ("crash_prob", crash_prob),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.drop_prob = drop_prob
        self.duplicate_prob = duplicate_prob
        self.reorder_prob = reorder_prob
        self.jitter_max = jitter_max
        self.crash_prob = crash_prob
        self.crash_downtime = crash_downtime
        self.max_crashes = max_crashes
        self.crashable_hosts = (
            frozenset(crashable_hosts) if crashable_hosts is not None else None
        )
        if crash_mode not in ("durable", "volatile"):
            raise ValueError(
                f"crash_mode must be 'durable' or 'volatile', got {crash_mode!r}"
            )
        self.crash_mode = crash_mode

    def __repr__(self) -> str:
        return (
            f"FaultPolicy(drop={self.drop_prob:.3f}, "
            f"dup={self.duplicate_prob:.3f}, "
            f"reorder={self.reorder_prob:.3f}, "
            f"jitter={self.jitter_max:.2e}, "
            f"crash={self.crash_prob:.3f}, "
            f"mode={self.crash_mode})"
        )


class RetryPolicy:
    """Ack/retry parameters of the reliable-delivery layer.

    The sender retransmits after ``base_timeout`` simulated seconds,
    doubling (``backoff``) on every further attempt but never waiting
    longer than ``max_timeout`` per attempt, and gives up — failing
    closed — after ``max_retries`` retransmissions *or* once the total
    time spent waiting on one message exceeds ``deadline`` (``None``
    disables the deadline).  Both bounds guarantee a permanently-dead
    destination yields a
    :class:`~repro.runtime.network.DeliveryTimeoutError` in bounded
    simulated time instead of unbounded exponential doubling.
    """

    def __init__(
        self,
        base_timeout: float = 2e-3,
        backoff: float = 2.0,
        max_retries: int = 12,
        max_timeout: float = 0.5,
        deadline: Optional[float] = None,
        jitter_seed: Optional[int] = None,
    ) -> None:
        if base_timeout <= 0:
            raise ValueError("base_timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if max_timeout < base_timeout:
            raise ValueError("max_timeout must be >= base_timeout")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive when set")
        self.base_timeout = base_timeout
        self.backoff = backoff
        self.max_retries = max_retries
        #: cap on a single retransmission timer (truncated exponential
        #: backoff).
        self.max_timeout = max_timeout
        #: total simulated time one message may spend waiting on timers
        #: before the sender fails closed.
        self.deadline = deadline
        #: opt-in decorrelated jitter ("AWS architecture blog" variant:
        #: each timer draws uniformly from [base, 3 * previous timer],
        #: truncated at ``max_timeout``).  ``None`` — the default —
        #: keeps the exact deterministic doubling schedule, so existing
        #: fault-sweep seeds stay bit-identical; a seed makes the
        #: jittered schedule itself reproducible.
        self.jitter_seed = jitter_seed
        self._jitter_rng = (
            random.Random(jitter_seed) if jitter_seed is not None else None
        )
        self._jitter_prev = base_timeout

    def timeout(self, attempt: int) -> float:
        """Retransmission timer after the ``attempt``-th failed send."""
        rng = self._jitter_rng
        if rng is None:
            return min(
                self.base_timeout * (self.backoff ** attempt),
                self.max_timeout,
            )
        if attempt == 0:
            # Each message's schedule restarts, so two messages with the
            # same retry count draw the same number of variates.
            self._jitter_prev = self.base_timeout
        value = min(
            self.max_timeout,
            rng.uniform(self.base_timeout, self._jitter_prev * 3.0),
        )
        self._jitter_prev = value
        return value

    def past_deadline(self, waited: float) -> bool:
        """Has ``waited`` (total timer time for one message) run out?"""
        return self.deadline is not None and waited >= self.deadline


class FaultInjector:
    """Seeded source of fault decisions; owns the crash/restart state."""

    def __init__(
        self, policy: Optional[FaultPolicy] = None, seed: int = 0
    ) -> None:
        self.policy = policy or FaultPolicy()
        self.seed = seed
        self.rng = random.Random(seed)
        #: host -> simulated time at which it comes back up.
        self.down_until: Dict[str, float] = {}
        self.crashes = 0

    # -- per-delivery decisions ----------------------------------------------

    def should_drop(self) -> bool:
        p = self.policy.drop_prob
        return bool(p) and self.rng.random() < p

    def should_duplicate(self) -> bool:
        p = self.policy.duplicate_prob
        return bool(p) and self.rng.random() < p

    def jitter(self) -> float:
        j = self.policy.jitter_max
        return self.rng.uniform(0.0, j) if j else 0.0

    def reorder_slot(self, queue_len: int) -> Optional[int]:
        """Index to insert a control message at, or None to append."""
        p = self.policy.reorder_prob
        if queue_len and p and self.rng.random() < p:
            return self.rng.randrange(queue_len + 1)
        return None

    # -- crash / restart -----------------------------------------------------

    def maybe_crash(
        self, host: str, clock: float, kind: Optional[str] = None
    ) -> bool:
        """Roll for a fail-stop of ``host`` at time ``clock``.

        ``kind`` is the message kind being received — ignored by the
        probabilistic injector, but the hook that lets
        :class:`CrashPointInjector` target one exact receipt boundary.
        """
        policy = self.policy
        if not policy.crash_prob:
            return False
        if policy.max_crashes is not None and self.crashes >= policy.max_crashes:
            return False
        if (
            policy.crashable_hosts is not None
            and host not in policy.crashable_hosts
        ):
            return False
        if self.rng.random() >= policy.crash_prob:
            return False
        self.crashes += 1
        self.down_until[host] = clock + policy.crash_downtime
        return True

    def is_down(self, host: str, clock: float) -> bool:
        until = self.down_until.get(host)
        return until is not None and clock < until

    def check_restart(self, host: str, clock: float) -> bool:
        """True exactly once per crash, when the downtime has elapsed."""
        until = self.down_until.get(host)
        if until is not None and clock >= until:
            del self.down_until[host]
            return True
        return False


class CrashPointInjector(FaultInjector):
    """Deterministically crash one host at one message-receipt boundary.

    Fires exactly once: at the ``occurrence``-th time (0-based) ``host``
    receives a message of kind ``kind``.  No other fault is ever
    injected, so the execution prefix before the crash is bit-identical
    to the fault-free run — which is what makes enumerating every
    ``(host, kind, occurrence)`` boundary from a fault-free reference
    log sound.  Defaults to the volatile crash mode, the one that
    actually exercises checkpoint/WAL recovery.
    """

    def __init__(
        self,
        host: str,
        kind: str,
        occurrence: int = 0,
        crash_downtime: float = 2e-3,
        crash_mode: str = "volatile",
    ) -> None:
        super().__init__(
            FaultPolicy(
                crash_prob=1.0,
                crash_downtime=crash_downtime,
                max_crashes=1,
                crashable_hosts=(host,),
                crash_mode=crash_mode,
            ),
            seed=0,
        )
        self.target_host = host
        self.target_kind = kind
        self.occurrence = occurrence
        #: receipts of (target_host, target_kind) observed so far.
        self.receipts = 0
        #: whether the crash point was actually reached.
        self.fired = False

    def maybe_crash(
        self, host: str, clock: float, kind: Optional[str] = None
    ) -> bool:
        if self.fired or host != self.target_host or kind != self.target_kind:
            return False
        receipt = self.receipts
        self.receipts += 1
        if receipt != self.occurrence:
            return False
        self.fired = True
        self.crashes += 1
        self.down_until[host] = clock + self.policy.crash_downtime
        return True
