"""Seeded fault-injection sweeps: the "never a wrong answer" check.

A sweep takes one split program and runs it under many randomly drawn —
but seed-reproducible — fault schedules.  Each schedule must end in one
of exactly two ways:

* the run **completes** with field values identical to the fault-free
  reference run, every delivered message's data labels within the
  receiving host's confidentiality clearance, and an empty audit log; or
* the run **fails closed** with an explicit
  :class:`~repro.runtime.network.DeliveryTimeoutError`.

Anything else — a wrong field value, a label above the receiver's
clearance, an unexpected exception — is recorded as a failure.  The CLI
(``python -m repro faultsweep``) and the differential test harness both
drive this engine.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Callable, Dict, List, Optional, Tuple

from .. import parallel
from ..splitter.fragments import SplitProgram
from .executor import ExecutionResult, run_split_program
from .faults import CrashPointInjector, FaultInjector, FaultPolicy
from .network import DeliveryTimeoutError


def split_for_sweep(source: str, config, engine: Optional[str] = None) -> SplitProgram:
    """Partition ``source`` for a sweep, through the whole-pipeline
    split cache.

    Sweep drivers re-split the same (source, config) pair across CLI
    invocations and parallel sweeps; routing them through
    :func:`repro.splitter.partition.split_source` means a warm
    ``REPRO_SPLIT_CACHE_DIR`` serves the split from the artifact tier
    instead of re-running the splitter.  The rehydrated split is
    observably identical to a fresh compile (pinned by
    ``tests/splitter/test_split_cache.py``), so sweep verdicts cannot
    depend on how the split was obtained.
    """
    from ..splitter.partition import split_source

    return split_source(source, config, engine).split


def random_policy(rng: random.Random) -> FaultPolicy:
    """Draw one fault schedule's knobs; spans mild to fairly hostile."""
    policy = FaultPolicy(
        drop_prob=rng.uniform(0.0, 0.15),
        duplicate_prob=rng.uniform(0.0, 0.15),
        reorder_prob=rng.uniform(0.0, 0.3),
        jitter_max=rng.uniform(0.0, 1e-3),
        crash_prob=rng.uniform(0.0, 0.02),
        crash_downtime=rng.uniform(1e-4, 4e-3),
        max_crashes=3,
    )
    # Drawn last so every pre-existing seed keeps its exact fault
    # schedule: half the schedules now crash with volatile state
    # (checkpoint + WAL recovery), half with the legacy durable state.
    if rng.random() < 0.5:
        policy.crash_mode = "volatile"
    return policy


class ScheduleOutcome:
    """What happened under one fault schedule."""

    __slots__ = ("seed", "policy", "status", "detail", "fault_counts")

    def __init__(
        self,
        seed: int,
        policy: FaultPolicy,
        status: str,
        detail: str = "",
        fault_counts: Optional[Dict[str, int]] = None,
    ) -> None:
        self.seed = seed
        self.policy = policy
        #: "ok" | "timeout" | "failure"
        self.status = status
        self.detail = detail
        self.fault_counts = fault_counts or {}

    def __repr__(self) -> str:
        return f"ScheduleOutcome(seed={self.seed}, {self.status})"


class SweepReport:
    """Aggregate of a whole sweep."""

    def __init__(self, reference: Dict[Tuple[str, str], object]) -> None:
        self.reference = reference
        self.schedules: List[ScheduleOutcome] = []
        self.failures: List[str] = []

    @property
    def completed(self) -> int:
        return sum(1 for s in self.schedules if s.status == "ok")

    @property
    def timeouts(self) -> int:
        return sum(1 for s in self.schedules if s.status == "timeout")

    def summary(self) -> str:
        total = len(self.schedules)
        faults = sum(
            sum(s.fault_counts.values()) for s in self.schedules
        )
        lines = [
            f"{total} schedules: {self.completed} completed with the "
            f"fault-free result, {self.timeouts} failed closed (timeout), "
            f"{len(self.failures)} FAILED; {faults} injected fault events"
        ]
        for failure in self.failures:
            lines.append(f"  FAIL {failure}")
        return "\n".join(lines)


def reference_fields(
    split: SplitProgram, opt_level: int = 1
) -> Dict[Tuple[str, str], object]:
    """Field values of the fault-free run — the oracle for the sweep."""
    outcome = run_split_program(split, opt_level=opt_level)
    return {
        key: outcome.field_value(*key) for key in split.fields
    }


def assurance_problems(split: SplitProgram, outcome: ExecutionResult) -> List[str]:
    """Label violations among everything the network saw delivered.

    Checks both the per-message instrumentation (each transmitted
    message's data labels against the destination's confidentiality
    clearance) and the flow log (each labeled value that became visible
    to a host).
    """
    config = split.config
    problems: List[str] = []
    for message in outcome.network.message_log:
        descriptor = config.host(message.dst)
        for label in message.data_labels:
            if not label.conf.flows_to(descriptor.conf):
                problems.append(
                    f"{message.kind} {message.src}->{message.dst} carried "
                    f"{label} above C_{message.dst}"
                )
    for label, host in outcome.network.flow_log:
        descriptor = config.host(host)
        if not label.conf.flows_to(descriptor.conf):
            problems.append(f"data labeled {label} became visible to {host}")
    return problems


def _run_schedule(
    split: SplitProgram,
    reference: Dict[Tuple[str, str], object],
    seed: int,
    opt_level: int,
    policy_factory: Callable[[random.Random], FaultPolicy],
) -> Tuple[ScheduleOutcome, Optional[str]]:
    """One fault schedule; returns the outcome plus the untagged failure
    line (``None`` unless the schedule is a failure)."""
    policy = policy_factory(random.Random(seed))
    faults = FaultInjector(policy, seed=seed)
    token_rng = random.Random(seed ^ 0x5EED)
    try:
        outcome = run_split_program(
            split, opt_level=opt_level, faults=faults, token_rng=token_rng
        )
    except DeliveryTimeoutError as error:
        return ScheduleOutcome(
            seed, policy, "timeout", str(error), {"crashes": faults.crashes}
        ), None
    except Exception as error:  # noqa: BLE001 — any other escape is a bug
        return ScheduleOutcome(
            seed, policy, "failure", repr(error)
        ), f"seed={seed} {policy}: unexpected {error!r}"
    problems: List[str] = []
    for key, expected in reference.items():
        got = outcome.field_value(*key)
        if got != expected:
            problems.append(
                f"field {key[0]}.{key[1]} = {got!r}, expected "
                f"{expected!r}"
            )
    problems.extend(assurance_problems(split, outcome))
    if outcome.audits:
        problems.append(f"audit log not empty: {outcome.audits}")
    counts = dict(outcome.network.fault_counts)
    if problems:
        detail = "; ".join(problems)
        return ScheduleOutcome(
            seed, policy, "failure", detail, counts
        ), f"seed={seed} {policy}: {detail}"
    return ScheduleOutcome(seed, policy, "ok", fault_counts=counts), None


def _schedule_task(seed: int) -> Tuple[ScheduleOutcome, Optional[str]]:
    """Worker-side wrapper: the split program does not pickle (compiled
    fragment closures), so it arrives via the fork-inherited state."""
    state = parallel.state()
    return _run_schedule(
        state["split"], state["reference"], seed,
        state["opt_level"], state["policy_factory"],
    )


def sweep(
    split: SplitProgram,
    schedules: int = 50,
    base_seed: int = 0,
    opt_level: int = 1,
    policy_factory: Callable[[random.Random], FaultPolicy] = random_policy,
    name: str = "",
    jobs: int = 1,
) -> SweepReport:
    """Run ``schedules`` seeded fault schedules against ``split``.

    With ``jobs > 1`` the schedules run in a shared-nothing pool of
    forked workers; every schedule is seeded independently, so the
    report is identical to a serial run regardless of ``jobs``.  The
    split program (and with it every frontend-cache and label-cache
    entry its construction populated) is built in the parent before the
    pool forks, so workers inherit warm caches by memory copy.
    """
    reference = reference_fields(split, opt_level=opt_level)
    report = SweepReport(reference)
    tag = f"{name} " if name else ""
    seeds = [base_seed + index for index in range(schedules)]
    results = parallel.fork_map(
        _schedule_task, seeds, jobs,
        shared={
            "split": split,
            "reference": reference,
            "opt_level": opt_level,
            "policy_factory": policy_factory,
        },
    )
    if results is None:
        results = [
            _run_schedule(split, reference, seed, opt_level, policy_factory)
            for seed in seeds
        ]
    for outcome, failure in results:
        report.schedules.append(outcome)
        if failure is not None:
            report.failures.append(tag + failure)
    return report


# ----------------------------------------------------------------------
# Crash-point sweep: crash every host at every message-kind boundary
# ----------------------------------------------------------------------


class CrashPointOutcome:
    """One deterministic crash point's result."""

    __slots__ = ("host", "kind", "occurrence", "status", "detail")

    def __init__(
        self, host: str, kind: str, occurrence: int, status: str,
        detail: str = "",
    ) -> None:
        self.host = host
        self.kind = kind
        self.occurrence = occurrence
        #: "ok" | "timeout" | "failure"
        self.status = status
        self.detail = detail

    def __repr__(self) -> str:
        return (
            f"CrashPointOutcome({self.host}/{self.kind}"
            f"@{self.occurrence}, {self.status})"
        )


class CrashSweepReport:
    """Aggregate of a crash-point sweep."""

    def __init__(self, reference: Dict[Tuple[str, str], object]) -> None:
        self.reference = reference
        self.points: List[CrashPointOutcome] = []
        self.failures: List[str] = []

    @property
    def completed(self) -> int:
        return sum(1 for p in self.points if p.status == "ok")

    @property
    def timeouts(self) -> int:
        return sum(1 for p in self.points if p.status == "timeout")

    def summary(self) -> str:
        lines = [
            f"{len(self.points)} crash points: {self.completed} recovered "
            f"with the fault-free result, {self.timeouts} failed closed "
            f"(timeout), {len(self.failures)} FAILED"
        ]
        for failure in self.failures:
            lines.append(f"  FAIL {failure}")
        return "\n".join(lines)


def _pick_occurrences(total: int, per_point: Optional[int]) -> List[int]:
    """Up to ``per_point`` receipt indices in [0, total), evenly spaced
    and always including the first and last receipt; None means all."""
    if per_point is None or per_point >= total:
        return list(range(total))
    if per_point <= 1:
        return [0]
    step = (total - 1) / (per_point - 1)
    return sorted({round(i * step) for i in range(per_point)})


def _run_crash_point(
    split: SplitProgram,
    point: Tuple[str, str, int],
    opt_level: int,
    crash_mode: str,
    crash_downtime: float,
    token_seed: int,
    ref_fields: Dict[Tuple[str, str], object],
    ref_depths: Dict[str, int],
    baseline_problems: frozenset,
) -> Tuple[CrashPointOutcome, Optional[str]]:
    """One deterministic crash point; returns the outcome plus the
    untagged failure line (``None`` unless the point is a failure)."""
    dst, kind, occurrence = point
    injector = CrashPointInjector(
        dst, kind, occurrence,
        crash_downtime=crash_downtime, crash_mode=crash_mode,
    )
    label = f"{dst}/{kind}@{occurrence}"
    try:
        outcome = run_split_program(
            split, opt_level=opt_level, faults=injector,
            token_rng=random.Random(token_seed),
        )
    except DeliveryTimeoutError as error:
        return CrashPointOutcome(
            dst, kind, occurrence, "timeout", str(error)
        ), None
    except Exception as error:  # noqa: BLE001 — any escape is a bug
        return CrashPointOutcome(
            dst, kind, occurrence, "failure", repr(error)
        ), f"{label}: unexpected {error!r}"
    problems: List[str] = []
    if not injector.fired:
        problems.append("crash point never reached")
    for key, expected in ref_fields.items():
        got = outcome.field_value(*key)
        if got != expected:
            problems.append(
                f"field {key[0]}.{key[1]} = {got!r}, expected "
                f"{expected!r}"
            )
    problems.extend(
        p for p in assurance_problems(split, outcome)
        if p not in baseline_problems
    )
    if outcome.audits:
        problems.append(f"audit log not empty: {outcome.audits}")
    for host, h in outcome.hosts.items():
        if h.stack.depth != ref_depths[host]:
            problems.append(
                f"{host} ICS depth {h.stack.depth} != "
                f"fault-free {ref_depths[host]}"
            )
    if crash_mode == "volatile" and injector.fired and not any(
        event[0] == "recover"
        for event in outcome.network.fault_events
    ):
        problems.append("no recovery event after a volatile crash")
    if problems:
        detail = "; ".join(problems)
        return CrashPointOutcome(
            dst, kind, occurrence, "failure", detail
        ), f"{label}: {detail}"
    return CrashPointOutcome(dst, kind, occurrence, "ok"), None


def _crash_point_task(
    point: Tuple[str, str, int]
) -> Tuple[CrashPointOutcome, Optional[str]]:
    """Worker-side wrapper; heavyweight inputs come via the fork state."""
    state = parallel.state()
    return _run_crash_point(
        state["split"], point, state["opt_level"], state["crash_mode"],
        state["crash_downtime"], state["token_seed"], state["ref_fields"],
        state["ref_depths"], state["baseline_problems"],
    )


def crash_point_sweep(
    split: SplitProgram,
    opt_level: int = 1,
    per_point: Optional[int] = 3,
    crash_mode: str = "volatile",
    crash_downtime: float = 2e-3,
    name: str = "",
    token_seed: int = 0x5EED,
    jobs: int = 1,
) -> CrashSweepReport:
    """Crash each host at each message-kind receipt boundary, recover,
    and check the run still ends bit-identical to fault-free.

    The boundaries are enumerated from a fault-free reference run's
    message log: every remote ``(dst host, kind)`` pair, sampled at up
    to ``per_point`` receipt indices (``None`` = every single receipt).
    Because :class:`~repro.runtime.faults.CrashPointInjector` injects no
    other fault, the pre-crash prefix of each run matches the reference
    exactly, so every enumerated point is guaranteed to fire.

    With ``jobs > 1`` the crash points run in a shared-nothing pool of
    forked workers; each point is fully determined by its
    ``(host, kind, occurrence)`` triple, so the report is identical to
    a serial run regardless of ``jobs``.
    """
    tag = f"{name} " if name else ""
    reference = run_split_program(
        split, opt_level=opt_level, token_rng=random.Random(token_seed)
    )
    ref_fields = {
        key: reference.field_value(*key) for key in split.fields
    }
    ref_depths = {
        host: h.stack.depth for host, h in reference.hosts.items()
    }
    # Some workloads (e.g. medical) declassify data whose static label
    # the per-message instrumentation still flags; only flows the
    # fault-free run does NOT exhibit count against a crash point.
    baseline_problems = frozenset(assurance_problems(split, reference))
    receipt_counts = Counter(
        (m.dst, m.kind)
        for m in reference.network.message_log
        if m.src != m.dst
    )
    points = [
        (dst, kind, occurrence)
        for (dst, kind), total in sorted(receipt_counts.items())
        for occurrence in _pick_occurrences(total, per_point)
    ]
    report = CrashSweepReport(ref_fields)
    results = parallel.fork_map(
        _crash_point_task, points, jobs,
        shared={
            "split": split,
            "opt_level": opt_level,
            "crash_mode": crash_mode,
            "crash_downtime": crash_downtime,
            "token_seed": token_seed,
            "ref_fields": ref_fields,
            "ref_depths": ref_depths,
            "baseline_problems": baseline_problems,
        },
    )
    if results is None:
        results = [
            _run_crash_point(
                split, point, opt_level, crash_mode, crash_downtime,
                token_seed, ref_fields, ref_depths, baseline_problems,
            )
            for point in points
        ]
    for outcome, failure in results:
        report.points.append(outcome)
        if failure is not None:
            report.failures.append(tag + failure)
    return report


# ----------------------------------------------------------------------
# Storage fault sweep: the durable tier under injected storage failures
# ----------------------------------------------------------------------


class StorageScheduleOutcome:
    """One storage fault schedule's result."""

    __slots__ = ("seed", "status", "detail", "degraded", "tampered")

    def __init__(
        self, seed: int, status: str, detail: str = "",
        degraded: bool = False, tampered: str = "",
    ) -> None:
        self.seed = seed
        #: "ok" | "failure"
        self.status = status
        self.detail = detail
        #: whether the live run lost its durable tier mid-flight.
        self.degraded = degraded
        #: the post-mortem tamper kind applied ("" = none).
        self.tampered = tampered

    def __repr__(self) -> str:
        return f"StorageScheduleOutcome(seed={self.seed}, {self.status})"


class StorageSweepReport:
    """Aggregate of a storage fault sweep."""

    def __init__(self) -> None:
        self.schedules: List[StorageScheduleOutcome] = []
        self.failures: List[str] = []

    @property
    def completed(self) -> int:
        return sum(1 for s in self.schedules if s.status == "ok")

    @property
    def degradations(self) -> int:
        return sum(1 for s in self.schedules if s.degraded)

    def summary(self) -> str:
        tampers = sum(1 for s in self.schedules if s.tampered)
        lines = [
            f"{len(self.schedules)} storage schedules: {self.completed} ok "
            f"({self.degradations} degraded gracefully, {tampers} tamper "
            f"checks failed closed), {len(self.failures)} FAILED"
        ]
        for failure in self.failures:
            lines.append(f"  FAIL {failure}")
        return "\n".join(lines)


def storage_fault_sweep(
    split: SplitProgram,
    schedules: int = 25,
    base_seed: int = 0,
    opt_level: int = 1,
    name: str = "",
) -> StorageSweepReport:
    """Run seeded storage-fault schedules against the SQLite tier.

    Each schedule runs the workload on a SQLite-backed session with a
    seeded :class:`~repro.runtime.storage.faultsim.StorageFaultInjector`
    (locked/busy databases exercising the bounded retry path, disk-full
    exercising graceful degradation).  The live run must always complete
    with the fault-free field values — the in-memory state is
    authoritative, so a dying disk may cost durability, never
    correctness — and a degradation must leave a recorded ``degraded``
    trace event.  When the tier survives, the schedule then attacks the
    directory post-mortem with a seeded tamper kind and requires
    rehydration to fail closed (or, untampered, to reproduce the
    oracle's observables bit-identically).
    """
    import shutil
    import tempfile

    from ..trust import KeyRegistry
    from .checkpoint import CheckpointTamperError
    from .session import RuntimeImage, Session
    from .storage import (
        SessionStorage,
        StorageUnavailableError,
        rehydrate_session,
    )
    from .storage.faultsim import (
        TAMPER_KINDS,
        StorageFaultInjector,
        StorageFaultPolicy,
    )

    tag = f"{name} " if name else ""
    report = StorageSweepReport()
    image = RuntimeImage(split, KeyRegistry())
    oracle = Session(image)
    oracle.run()
    oracle_fields = {
        key: oracle.result().field_value(*key) for key in split.fields
    }
    oracle_observables = oracle.observables()
    for index in range(schedules):
        seed = base_seed + index
        rng = random.Random(seed ^ 0x570AA6E)
        policy = StorageFaultPolicy(
            busy_prob=rng.uniform(0.0, 0.3),
            diskfull_after=(
                rng.randrange(5, 80) if rng.random() < 0.4 else None
            ),
        )
        directory = tempfile.mkdtemp(prefix="repro-storage-sweep-")
        problems: List[str] = []
        degraded = False
        tampered = ""
        try:
            storage = SessionStorage(directory)
            injector = StorageFaultInjector(policy, seed=seed)
            injector.install(storage)
            session = Session(image, opt_level=opt_level, storage=storage)
            try:
                outcome = session.run()
            except Exception as error:  # noqa: BLE001 — any escape is a bug
                problems.append(f"live run raised {error!r}")
                outcome = None
            if outcome is not None:
                for key, expected in oracle_fields.items():
                    got = outcome.field_value(*key)
                    if got != expected:
                        problems.append(
                            f"field {key[0]}.{key[1]} = {got!r}, "
                            f"expected {expected!r}"
                        )
                degraded = not storage.available
                events = [
                    e for e in session.network.fault_events
                    if e[0] == "degraded"
                ]
                if degraded and not events:
                    problems.append(
                        "storage degraded without a recorded event"
                    )
                if events and not degraded:
                    problems.append(
                        "degraded event recorded but tier still attached"
                    )
            if outcome is not None and not degraded:
                # Post-mortem: tamper half the surviving directories.
                storage.fault_hook = None
                storage.close()
                if rng.random() < 0.5:
                    tampered = TAMPER_KINDS[rng.randrange(len(TAMPER_KINDS))]
                    try:
                        from .storage.faultsim import tamper

                        tamper(directory, tampered)
                    except RuntimeError:
                        # No rows of the targeted kind (e.g. an empty
                        # WAL right after a checkpoint): tamper the
                        # checkpoint instead, which always exists.
                        tampered = "corrupt-page"
                        from .storage.faultsim import tamper

                        tamper(directory, tampered)
                try:
                    resumed = rehydrate_session(split, directory)
                    if tampered:
                        problems.append(
                            f"tamper {tampered} was not detected"
                        )
                    else:
                        resumed.run()
                        if resumed.observables() != oracle_observables:
                            problems.append(
                                "rehydrated observables diverge from "
                                "the oracle"
                            )
                except (CheckpointTamperError, StorageUnavailableError):
                    if not tampered:
                        problems.append(
                            "untampered directory failed rehydration"
                        )
                except Exception as error:  # noqa: BLE001
                    problems.append(
                        f"rehydration raised unexpected {error!r}"
                    )
        finally:
            shutil.rmtree(directory, ignore_errors=True)
        if problems:
            detail = "; ".join(problems)
            report.schedules.append(
                StorageScheduleOutcome(
                    seed, "failure", detail, degraded, tampered
                )
            )
            report.failures.append(f"{tag}seed={seed}: {detail}")
        else:
            report.schedules.append(
                StorageScheduleOutcome(seed, "ok", "", degraded, tampered)
            )
    return report
