"""Execution tracing: an event log of a distributed run.

Attach a :class:`Tracer` to a :class:`DistributedExecutor` and every
fragment execution and control transfer is recorded — enough to replay
the Figure 4 walkthrough ("T sync's e2 ... passes t1 to e5 on B via
rgoto; there, Bob's host computes n and returns control via lgoto")
as a checked sequence of events.

Under fault injection the timeline also carries the reliability layer's
events: ``drop``, ``retry``, ``duplicate``, ``reorder``, ``crash``,
``restart``, and ``timeout``, interleaved with the messages whose
delivery they perturbed.  The crash-recovery subsystem adds
``checkpoint`` (a host sealed its durable state), ``recover`` (a
restarted host replayed its checkpoint + WAL and announced itself), and
``quarantine`` (a detected protocol violation blacklisted the
offender).
"""

from __future__ import annotations

from typing import List, Optional

from .executor import DistributedExecutor
from .network import SimNetwork


class TraceEvent:
    """One observed event: a control message or a fragment execution."""

    __slots__ = ("kind", "src", "dst", "entry", "detail")

    def __init__(
        self,
        kind: str,
        src: Optional[str],
        dst: Optional[str],
        entry: Optional[str] = None,
        detail: str = "",
    ) -> None:
        self.kind = kind
        self.src = src
        self.dst = dst
        self.entry = entry
        self.detail = detail

    def __repr__(self) -> str:
        route = f"{self.src}->{self.dst}" if self.src else self.dst
        entry = f" {self.entry}" if self.entry else ""
        return f"{self.kind} {route}{entry}"


class Tracer:
    """Wraps a network's send paths to record an event timeline."""

    def __init__(self, executor: DistributedExecutor) -> None:
        self.events: List[TraceEvent] = []
        self._install(executor.network)

    def _install(self, network: SimNetwork) -> None:
        # A collector is now attached: switch full event recording back
        # on in case this network was running the lean (no-log) path.
        network.record_logs = True
        original_account = network._account

        def traced_account(message, messages):
            self.events.append(
                TraceEvent(
                    message.kind,
                    message.src,
                    message.dst,
                    message.payload.get("entry")
                    if isinstance(message.payload, dict)
                    else None,
                )
            )
            return original_account(message, messages)

        network._account = traced_account

        def on_fault(kind, src, dst, detail):
            self.events.append(TraceEvent(kind, src, dst, detail=detail))

        network.on_event(on_fault)

    # -- queries ------------------------------------------------------------

    def kinds(self) -> List[str]:
        return [event.kind for event in self.events]

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def sequence(self) -> List[str]:
        """Compact textual form, e.g. ``rgoto A->B`` lines."""
        return [repr(event) for event in self.events]

    def first_index(self, kind: str, src: str = None, dst: str = None) -> int:
        for index, event in enumerate(self.events):
            if event.kind != kind:
                continue
            if src is not None and event.src != src:
                continue
            if dst is not None and event.dst != dst:
                continue
            return index
        return -1


def traced_run(split, opt_level: int = 1, faults=None):
    """Run a split program with tracing; returns (outcome, tracer)."""
    executor = DistributedExecutor(split, opt_level=opt_level, faults=faults)
    tracer = Tracer(executor)
    outcome = executor.run()
    return outcome, tracer
