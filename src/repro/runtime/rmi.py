"""A minimal RMI-style layer over the simulated network.

Used for the paper's hand-coded reference implementations (OT-h and
Tax-h, Section 7.3).  An RMI invocation is a synchronous request/reply —
two messages, exactly how the paper accounts for Java RMI calls.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from .network import CostModel, Message, SimNetwork


class RMIServer:
    """One host exposing named remote methods."""

    def __init__(self, name: str, network: SimNetwork) -> None:
        self.name = name
        self.network = network
        self._methods: Dict[str, Callable] = {}
        network.register(name, self._dispatch)

    def expose(self, name: str, func: Callable) -> None:
        self._methods[name] = func

    def method(self, func: Callable) -> Callable:
        """Decorator form of :meth:`expose`."""
        self.expose(func.__name__, func)
        return func

    def _dispatch(self, message: Message) -> Any:
        if message.kind != "rmi":
            raise ValueError(f"RMI host got {message.kind!r}")
        if message.src != self.name:
            self.network.charge_check()
        method = self._methods[message.payload["method"]]
        return method(*message.payload["args"])


class RMISystem:
    """A set of RMI hosts sharing one network (and its accounting)."""

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.network = SimNetwork(cost_model)
        self.hosts: Dict[str, RMIServer] = {}

    def host(self, name: str) -> RMIServer:
        if name not in self.hosts:
            self.hosts[name] = RMIServer(name, self.network)
        return self.hosts[name]

    def call(self, src: str, dst: str, method: str, *args: Any) -> Any:
        """One RMI invocation: two messages unless local."""
        return self.network.request(
            Message("rmi", src, dst, {"method": method, "args": args})
        )

    @property
    def total_messages(self) -> int:
        return self.network.counts.get("messages", 0)

    @property
    def elapsed(self) -> float:
        return self.network.clock
