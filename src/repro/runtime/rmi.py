"""A minimal RMI-style layer over the simulated network.

Used for the paper's hand-coded reference implementations (OT-h and
Tax-h, Section 7.3).  An RMI invocation is a synchronous request/reply —
two messages, exactly how the paper accounts for Java RMI calls.

Like the split-program hosts, RMI servers are *at-most-once* under the
reliable-delivery protocol: when the network stamps messages with
idempotency keys (fault injection enabled), a retransmitted or
duplicated invocation is answered from the server's result table
instead of re-running the method.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from .faults import FaultInjector
from .network import CostModel, Message, SimNetwork

_UNSEEN = object()


class RMIServer:
    """One host exposing named remote methods."""

    def __init__(self, name: str, network: SimNetwork) -> None:
        self.name = name
        self.network = network
        self._methods: Dict[str, Callable] = {}
        self._seen_calls: Dict[int, Any] = {}
        network.register(name, self._dispatch)

    def expose(self, name: str, func: Callable) -> None:
        self._methods[name] = func

    def method(self, func: Callable) -> Callable:
        """Decorator form of :meth:`expose`."""
        self.expose(func.__name__, func)
        return func

    def _dispatch(self, message: Message) -> Any:
        if message.kind != "rmi":
            raise ValueError(f"RMI host got {message.kind!r}")
        remote = message.src != self.name
        if remote:
            self.network.charge_check()
            if message.msg_id is not None:
                cached = self._seen_calls.get(message.msg_id, _UNSEEN)
                if cached is not _UNSEEN:
                    return cached
        method = self._methods[message.payload["method"]]
        result = method(*message.payload["args"])
        if remote and message.msg_id is not None:
            self._seen_calls[message.msg_id] = result
        return result


class RMISystem:
    """A set of RMI hosts sharing one network (and its accounting)."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.network = SimNetwork(cost_model, faults=faults)
        self.hosts: Dict[str, RMIServer] = {}

    def host(self, name: str) -> RMIServer:
        if name not in self.hosts:
            self.hosts[name] = RMIServer(name, self.network)
        return self.hosts[name]

    def call(self, src: str, dst: str, method: str, *args: Any) -> Any:
        """One RMI invocation: two messages unless local."""
        return self.network.request(
            Message("rmi", src, dst, {"method": method, "args": args})
        )

    @property
    def total_messages(self) -> int:
        return self.network.counts.get("messages", 0)

    @property
    def elapsed(self) -> float:
        return self.network.clock
