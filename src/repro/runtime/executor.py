"""The distributed executor: runs a SplitProgram over simulated hosts.

Good hosts preserve the source program's sequential execution (Section
3.2): there is a single thread of control, embodied by the rgoto/lgoto
message queue.  Execution starts at the main method's entry, holding
the root capability ``t0`` (as host T does in Figure 4); consuming
``t0`` ends the program.

The executor is a thin wrapper over the session runtime
(:mod:`repro.runtime.session`): constructing one resolves — and
memoizes on the split — the shared :class:`RuntimeImage` holding every
immutable per-program artifact (compiled fragments, derived key
material, entry ACLs, initial field values, precomputed label checks),
then runs as one :class:`Session` over it.  Repeated executions of the
same split therefore share artifacts automatically; a serving loop that
wants more should drive a :class:`~repro.runtime.session.SessionPool`
directly.
"""

from __future__ import annotations

from typing import Optional

from ..splitter.fragments import SplitProgram
from ..trust import KeyRegistry
from .faults import FaultInjector
from .host import TrustedHost
from .network import CostModel
from .session import ExecutionResult, RuntimeImage, Session

__all__ = ["DistributedExecutor", "ExecutionResult", "run_split_program"]


class DistributedExecutor(Session):
    """Sets up hosts for a split program and drives the control loop.

    Signature-compatible with the pre-session executor: same
    constructor parameters, same :meth:`run` semantics, same attributes
    (``split``, ``network``, ``registry``, ``hosts``).  The immutable
    setup now comes from :meth:`RuntimeImage.for_split`, so two
    executors over the same split share one image — including one
    :class:`~repro.trust.KeyRegistry` when none is passed explicitly.
    """

    def __init__(
        self,
        split: SplitProgram,
        cost_model: Optional[CostModel] = None,
        opt_level: int = 1,
        registry: Optional[KeyRegistry] = None,
        faults: Optional[FaultInjector] = None,
        token_rng=None,
        quarantine: bool = False,
        checkpoint_interval: int = 4,
        storage=None,
    ) -> None:
        super().__init__(
            RuntimeImage.for_split(split, registry),
            cost_model=cost_model,
            opt_level=opt_level,
            faults=faults,
            token_rng=token_rng,
            quarantine=quarantine,
            checkpoint_interval=checkpoint_interval,
            storage=storage,
        )

    def host(self, name: str) -> TrustedHost:
        return self.hosts[name]


def run_split_program(
    split: SplitProgram,
    cost_model: Optional[CostModel] = None,
    opt_level: int = 1,
    faults: Optional[FaultInjector] = None,
    token_rng=None,
    quarantine: bool = False,
    storage=None,
) -> ExecutionResult:
    """Convenience wrapper: execute a split program and return the result.

    With ``faults`` set, the run either completes with the fault-free
    result or raises :class:`~repro.runtime.network.DeliveryTimeoutError`
    (fail closed) — never a wrong answer.  With ``quarantine`` set, a
    detected protocol violation raises
    :class:`~repro.runtime.network.SecurityAbort` instead of stalling.

    **Key-reuse contract.** Every call over the same split shares that
    split's memoized :class:`RuntimeImage`, including its
    :class:`~repro.trust.KeyRegistry`: per-host HMAC keys are derived
    once per image, not once per call (the registry duplication the old
    per-run construction paid).  This is safe because keys never appear
    in any observable — tokens are minted fresh per session (nonces come
    from ``token_rng``/``os.urandom``), and nothing outlives the
    session that minted it.  A caller that *wants* distinct key material
    (e.g. to model key rotation) passes its own registry to
    :class:`DistributedExecutor`.
    """
    return DistributedExecutor(
        split, cost_model=cost_model, opt_level=opt_level, faults=faults,
        token_rng=token_rng, quarantine=quarantine, storage=storage,
    ).run()
