"""The distributed executor: runs a SplitProgram over simulated hosts.

Good hosts preserve the source program's sequential execution (Section
3.2): there is a single thread of control, embodied by the rgoto/lgoto
message queue.  Execution starts at the main method's entry, holding
the root capability ``t0`` (as host T does in Figure 4); consuming
``t0`` ends the program.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..splitter.fragments import SplitProgram
from ..trust import KeyRegistry
from .faults import FaultInjector
from .host import ExecutionState, HaltSignal, TrustedHost
from .network import CostModel, SimNetwork
from .values import FrameID

_MAX_STEPS = 2_000_000

#: Default for ExecutionResult accessors: raise on a missing name.
_RAISE = object()


class ExecutionResult:
    """Everything observable about one distributed run."""

    def __init__(
        self,
        network: SimNetwork,
        hosts: Dict[str, TrustedHost],
        main_frame: FrameID,
    ) -> None:
        self.network = network
        self.hosts = hosts
        self.main_frame = main_frame

    @property
    def elapsed(self) -> float:
        return self.network.clock

    @property
    def counts(self) -> Dict[str, int]:
        return self.network.table_counts()

    @property
    def audits(self):
        return self.network.audit_log

    def field_value(
        self,
        cls: str,
        field: str,
        oid: Optional[int] = None,
        default: Any = _RAISE,
    ) -> Any:
        """The stored value of a field (from whichever host holds it).

        Raises :class:`KeyError` when no host stores the field; pass
        ``default=`` to get a fallback value instead.
        """
        for host in self.hosts.values():
            key = (cls, field, oid)
            if key in host.field_store:
                return host.field_store[key]
        if default is not _RAISE:
            return default
        raise KeyError(f"field {cls}.{field} not found on any host")

    def var_value(self, frame: FrameID, var: str, default: Any = _RAISE) -> Any:
        """The value of a frame variable (from any host's copy).

        Raises :class:`KeyError` when no host's frame copy binds the
        variable — a silent ``None`` here has historically masked typos
        in test assertions.  Pass ``default=`` to get a fallback value
        instead.
        """
        for host in self.hosts.values():
            frame_copy = host.frames.get(frame)
            if frame_copy is not None and var in frame_copy["vars"]:
                return frame_copy["vars"][var]
        if default is not _RAISE:
            return default
        raise KeyError(f"variable {var!r} not bound in any copy of {frame!r}")

    def main_var(self, var: str, default: Any = _RAISE) -> Any:
        return self.var_value(self.main_frame, var, default)


class DistributedExecutor:
    """Sets up hosts for a split program and drives the control loop."""

    def __init__(
        self,
        split: SplitProgram,
        cost_model: Optional[CostModel] = None,
        opt_level: int = 1,
        registry: Optional[KeyRegistry] = None,
        faults: Optional[FaultInjector] = None,
        token_rng=None,
        quarantine: bool = False,
        checkpoint_interval: int = 4,
    ) -> None:
        self.split = split
        self.network = SimNetwork(cost_model, faults=faults)
        #: opt in to the quarantine layer: a rejected remote request
        #: raises SecurityAbort and blacklists the offender instead of
        #: being silently ignored.
        self.network.quarantine_enabled = quarantine
        self.registry = registry or KeyRegistry()
        self.hosts: Dict[str, TrustedHost] = {}
        for descriptor in split.config.hosts:
            self.hosts[descriptor.name] = TrustedHost(
                descriptor.name,
                split,
                self.network,
                self.registry,
                opt_level=opt_level,
                token_rng=token_rng,
                checkpoint_interval=checkpoint_interval,
            )

    def host(self, name: str) -> TrustedHost:
        return self.hosts[name]

    def run(self) -> ExecutionResult:
        """Execute the program to completion."""
        assert self.split.main_entry is not None
        main_host = self.hosts[self.split.main_host]
        main_key = self.split.fragments[self.split.main_entry].method_key
        main_frame = FrameID(main_key)
        # The root capability t0: consuming it halts the program.
        root = main_host.factory.mint(main_frame, self.split.main_entry)
        main_host.adopt_root(root)
        state = ExecutionState(self.split.main_entry, main_frame, root)
        halted = False
        try:
            main_host.run_chain(state)
        except HaltSignal:
            halted = True
        steps = 0
        while not halted:
            message = self.network.pop_control()
            if message is None:
                raise RuntimeError(
                    "distributed execution stalled: no control message "
                    "pending and the program has not halted"
                )
            handler = self.hosts[message.dst]
            try:
                handler.handle(message)
            except HaltSignal:
                halted = True
            steps += 1
            if steps > _MAX_STEPS:
                raise RuntimeError("execution exceeded the step budget")
        return ExecutionResult(self.network, self.hosts, main_frame)


def run_split_program(
    split: SplitProgram,
    cost_model: Optional[CostModel] = None,
    opt_level: int = 1,
    faults: Optional[FaultInjector] = None,
    token_rng=None,
    quarantine: bool = False,
) -> ExecutionResult:
    """Convenience wrapper: execute a split program and return the result.

    With ``faults`` set, the run either completes with the fault-free
    result or raises :class:`~repro.runtime.network.DeliveryTimeoutError`
    (fail closed) — never a wrong answer.  With ``quarantine`` set, a
    detected protocol violation raises
    :class:`~repro.runtime.network.SecurityAbort` instead of stalling.
    """
    return DistributedExecutor(
        split, cost_model=cost_model, opt_level=opt_level, faults=faults,
        token_rng=token_rng, quarantine=quarantine,
    ).run()
