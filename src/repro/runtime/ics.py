"""The integrity control stack (Sections 5.3–5.5, Figure 5).

The global ICS is distributed: each host keeps a local stack of pairs
``(t, t')`` where ``t`` is the capability the host most recently issued
and ``t'`` is the capability for the rest of the global stack.  A valid
``lgoto(t)`` must present exactly ``top(s_h).t``; the pop invalidates
``t`` forever (capabilities are one-shot).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .tokens import Token


class LocalStack:
    """One host's slice of the distributed ICS."""

    def __init__(self) -> None:
        self._stack: List[Tuple[Token, Optional[Token]]] = []

    def push(self, issued: Token, previous: Optional[Token]) -> None:
        self._stack.append((issued, previous))

    def top(self) -> Optional[Tuple[Token, Optional[Token]]]:
        return self._stack[-1] if self._stack else None

    def pop_if_top(self, token: Token) -> Optional[Optional[Token]]:
        """Pop and return the saved previous token iff ``token`` is on top.

        Returns None when the token does not match (the request must be
        ignored); the saved token may itself legitimately be None for the
        root capability.
        """
        if not self._stack:
            return None
        issued, previous = self._stack[-1]
        if issued != token:
            return None
        self._stack.pop()
        return (previous,)

    @property
    def depth(self) -> int:
        return len(self._stack)

    def __repr__(self) -> str:
        entries = ", ".join(t.entry for t, _ in self._stack)
        return f"LocalStack([{entries}])"
