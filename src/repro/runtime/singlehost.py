"""Reference single-host interpreter.

Executes the lowered IR directly, the way the original (unsplit) Jif
program would run on one trusted machine.  Used as the semantic oracle:
a correct partitioning must compute exactly the same field values and
return values as this interpreter (the subprograms "collectively
implement the original program").
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..splitter import ir
from .values import ArrayRef, ObjectRef


class _ReturnValue(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class SingleHostInterpreter:
    """Interprets an :class:`ir.IRProgram` on one host."""

    def __init__(self, program: ir.IRProgram) -> None:
        self.program = program
        #: (cls, field, oid) -> value; oid None = program instance.
        self.fields: Dict[Tuple[str, str, Optional[int]], Any] = {}
        self.arrays: Dict[int, list] = {}
        self.steps = 0
        self.max_steps = 10_000_000

    def seed_fields(self, initials: Dict[Tuple[str, str], Any]) -> None:
        for (cls, field), value in initials.items():
            self.fields[(cls, field, None)] = value

    def run_main(self) -> Any:
        return self.call(*self.program.main_key)

    def call(self, cls: str, method: str, *args: Any) -> Any:
        ir_method = self.program.methods[(cls, method)]
        frame: Dict[str, Any] = {}
        for param, value in zip(ir_method.params, args):
            frame[param] = value
        try:
            self._exec_body(ir_method, ir_method.body, frame)
        except _ReturnValue as ret:
            return ret.value
        return None

    # -- statements -------------------------------------------------------------

    def _exec_body(self, method: ir.IRMethod, body, frame) -> None:
        for stmt in body:
            self._exec_stmt(method, stmt, frame)

    def _exec_stmt(self, method: ir.IRMethod, stmt: ir.IRStmt, frame) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise RuntimeError("single-host interpreter exceeded step budget")
        if isinstance(stmt, ir.AssignVar):
            frame[stmt.var] = self._eval(method, stmt.expr, frame)
        elif isinstance(stmt, ir.AssignField):
            value = self._eval(method, stmt.expr, frame)
            oid = None
            if stmt.obj is not None:
                ref = self._eval(method, stmt.obj, frame)
                if ref is None:
                    raise RuntimeError("null dereference in field write")
                oid = ref.oid
            self.fields[(stmt.cls, stmt.field, oid)] = value
        elif isinstance(stmt, ir.AssignElem):
            ref = self._eval(method, stmt.array, frame)
            index = self._eval(method, stmt.index, frame)
            value = self._eval(method, stmt.expr, frame)
            if ref is None:
                raise RuntimeError("null dereference in array write")
            store = self.arrays[ref.oid]
            if not 0 <= index < len(store):
                raise RuntimeError("array index out of bounds")
            store[index] = value
        elif isinstance(stmt, ir.CallStmt):
            args = [self._eval(method, arg, frame) for arg in stmt.args]
            result = self.call(stmt.cls, stmt.method, *args)
            if stmt.result is not None:
                frame[stmt.result] = result
        elif isinstance(stmt, ir.ReturnStmt):
            value = (
                self._eval(method, stmt.expr, frame)
                if stmt.expr is not None
                else None
            )
            raise _ReturnValue(value)
        elif isinstance(stmt, ir.IfStmt):
            if self._eval(method, stmt.cond, frame):
                self._exec_body(method, stmt.then_body, frame)
            else:
                self._exec_body(method, stmt.else_body, frame)
        elif isinstance(stmt, ir.WhileStmt):
            while self._eval(method, stmt.cond, frame):
                self._exec_body(method, stmt.body, frame)
                self.steps += 1
                if self.steps > self.max_steps:
                    raise RuntimeError(
                        "single-host interpreter exceeded step budget"
                    )
        else:
            raise AssertionError(f"unknown statement {stmt!r}")

    # -- expressions -------------------------------------------------------------

    def _default_field(self, cls: str, field: str) -> Any:
        # Base types are recoverable from any method's var_bases only for
        # vars; for fields default to 0/False via stored initials. The
        # splitter seeds declared initials through seed_fields; absent
        # entries default to int 0 semantics, adjusted on first write.
        return 0

    def _eval(self, method: ir.IRMethod, expr: ir.IRExpr, frame) -> Any:
        if isinstance(expr, ir.Const):
            return expr.value
        if isinstance(expr, ir.VarUse):
            if expr.name in frame:
                return frame[expr.name]
            base = method.var_bases.get(expr.name)
            if base == "int":
                return 0
            if base == "boolean":
                return False
            return None
        if isinstance(expr, ir.FieldUse):
            oid = None
            if expr.obj is not None:
                ref = self._eval(method, expr.obj, frame)
                if ref is None:
                    raise RuntimeError("null dereference in field read")
                oid = ref.oid
            key = (expr.cls, expr.field, oid)
            if key not in self.fields:
                self.fields[key] = self._default_field(expr.cls, expr.field)
            return self.fields[key]
        if isinstance(expr, ir.BinOp):
            return self._eval_binop(method, expr, frame)
        if isinstance(expr, ir.UnOp):
            operand = self._eval(method, expr.operand, frame)
            return (not operand) if expr.op == "!" else (-operand)
        if isinstance(expr, ir.NewObj):
            return ObjectRef(expr.cls)
        if isinstance(expr, ir.NewArr):
            length = self._eval(method, expr.length, frame)
            ref = ArrayRef(length, "<local>", expr.label)
            self.arrays[ref.oid] = [0] * length
            return ref
        if isinstance(expr, ir.ArrayUse):
            ref = self._eval(method, expr.array, frame)
            index = self._eval(method, expr.index, frame)
            if ref is None:
                raise RuntimeError("null dereference in array read")
            store = self.arrays[ref.oid]
            if not 0 <= index < len(store):
                raise RuntimeError("array index out of bounds")
            return store[index]
        if isinstance(expr, ir.ArrayLen):
            ref = self._eval(method, expr.array, frame)
            if ref is None:
                raise RuntimeError("null dereference in array length")
            return ref.length
        if isinstance(expr, ir.DowngradeExpr):
            return self._eval(method, expr.inner, frame)
        raise AssertionError(f"unknown expression {expr!r}")

    def _eval_binop(self, method: ir.IRMethod, expr: ir.BinOp, frame) -> Any:
        op = expr.op
        left = self._eval(method, expr.left, frame)
        if op == "&&":
            return bool(left) and bool(self._eval(method, expr.right, frame))
        if op == "||":
            return bool(left) or bool(self._eval(method, expr.right, frame))
        right = self._eval(method, expr.right, frame)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            quotient = abs(left) // abs(right)
            return quotient if (left >= 0) == (right >= 0) else -quotient
        if op == "%":
            quotient = abs(left) // abs(right)
            signed = quotient if (left >= 0) == (right >= 0) else -quotient
            return left - signed * right
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise AssertionError(f"unknown operator {op!r}")


def run_single_host(source: str) -> SingleHostInterpreter:
    """Check, lower, and run a program on a single trusted host."""
    from ..lang.typecheck import check_source
    from ..splitter.lower import lower_program

    checked = check_source(source)
    program = lower_program(checked)
    interpreter = SingleHostInterpreter(program)
    initials = {
        key: info.init_value
        for key, info in checked.fields.items()
        if info.init_value is not None
    }
    interpreter.seed_fields(initials)
    interpreter.run_main()
    return interpreter
