"""Durable state for crash recovery: write-ahead log + sealed checkpoints.

The fault model of :mod:`repro.runtime.faults` originally treated a
crash as fail-stop *with durable state*: a restarted host woke up with
every frame, field, and ICS entry intact, so "recovery" never actually
ran.  This module makes the split explicit.  Each host owns a
:class:`DurableStore` — its simulated stable storage — holding

* a **write-ahead log** of every state mutation since the last
  checkpoint (field and array writes first among them, but also frame
  variable writes, ICS pushes/pops, idempotency-table inserts, and
  deferred-forward bookkeeping: everything a bit-identical recovery
  needs), appended *before* the effect is acknowledged to any peer; and
* a periodic **checkpoint**: a full snapshot of the host's volatile
  state (frames, ICS slice, dedup/seq state, fields, arrays, pending
  forwards), sealed with HMAC-SHA256 under the host's own key — the
  same key and registry that sign capability tokens
  (:mod:`repro.runtime.tokens`).  Taking a checkpoint compacts the WAL.

Stable storage is *untrusted*: a bad host (or a bad storage service)
may overwrite it.  The seal makes tampering detectable — recovery
verifies the checkpoint's MAC and its epoch against the host's sealed
monotonic counter (``high_water``, conceptually a TPM register the
storage attacker cannot roll back) and **fails closed** with
:class:`CheckpointTamperError` rather than loading forged or
rolled-back state.

Recovery announcements ride the same machinery: a restarted host
broadcasts ``recover`` carrying ``(host, epoch, seq)`` sealed with its
key (:func:`recovery_blob` is the byte format), so peers can tell a
genuine announcement from a fabricated or replayed one.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .storage import codec as _codec
from .storage.base import STATS as _STATS
from .tokens import Token
from .values import REJECTED, FrameID


class CheckpointTamperError(RuntimeError):
    """Stable storage failed verification: forged seal, missing
    checkpoint, or an epoch that does not match the host's sealed
    monotonic counter (a rollback).  Recovery fails closed."""


# ----------------------------------------------------------------------
# Canonical state encoding (the bytes under the checkpoint seal)
# ----------------------------------------------------------------------


def encode(value: Any) -> bytes:
    """A canonical, deterministic byte encoding of checkpoint state.

    Handles the container and value types that appear in host state;
    dictionaries are sorted by encoded key so iteration order never
    leaks into the seal.  Anything else falls back to ``repr`` (stable
    for the run-time value types, which print their numeric ids).
    """
    if value is None:
        return b"N"
    if value is True:
        return b"T"
    if value is False:
        return b"F"
    if value is REJECTED:
        return b"R"
    if isinstance(value, int):
        return b"i%d" % value
    if isinstance(value, float):
        return b"f" + repr(value).encode()
    if isinstance(value, str):
        raw = value.encode()
        return b"s%d:" % len(raw) + raw
    if isinstance(value, (bytes, bytearray)):
        return b"b%d:" % len(value) + bytes(value)
    if isinstance(value, Token):
        return b"tok(" + value.message() + b"," + value.mac + b")"
    if isinstance(value, FrameID):
        return b"fid(%d," % value.fid + encode(value.method_key) + b")"
    if isinstance(value, (list, tuple)):
        return b"[" + b",".join(encode(item) for item in value) + b"]"
    if isinstance(value, dict):
        items = sorted(
            (encode(key), encode(val)) for key, val in value.items()
        )
        return b"{" + b",".join(k + b"=" + v for k, v in items) + b"}"
    return b"?" + repr(value).encode()


def recovery_blob(host: str, epoch: int, seq: int) -> bytes:
    """The sealed byte format of a recovery announcement."""
    return f"{host}|{epoch}|{seq}".encode()


def copy_state(state: Dict[str, Any]) -> Dict[str, Any]:
    """A structural copy of a host-state snapshot.

    One level deeper than the containers that get mutated in place;
    leaf values (ints, tokens, refs, labels) are immutable at run time.
    """
    return {
        "fields": dict(state["fields"]),
        "arrays": {oid: list(vals) for oid, vals in state["arrays"].items()},
        "array_meta": dict(state["array_meta"]),
        "frames": {
            fid: dict(frame) for fid, frame in state["frames"].items()
        },
        "stack": list(state["stack"]),
        "seen": dict(state["seen"]),
        "pending": {
            target: dict(slots) for target, slots in state["pending"].items()
        },
        "peer_epochs": dict(state["peer_epochs"]),
    }


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------


class Checkpoint:
    """One sealed snapshot of a host's volatile state."""

    __slots__ = ("host", "epoch", "state", "seal")

    def __init__(
        self,
        host: str,
        epoch: int,
        state: Dict[str, Any],
        seal: bytes = b"",
    ) -> None:
        self.host = host
        self.epoch = epoch
        self.state = state
        self.seal = seal

    def message_body(self) -> bytes:
        """The bytes the seal authenticates: host, epoch, and state."""
        return encode((self.host, self.epoch, self.state))

    def __repr__(self) -> str:
        return f"Checkpoint({self.host} epoch={self.epoch})"


class DurableStore:
    """A host's simulated stable storage: checkpoint + WAL.

    The ``factory`` is the host's :class:`~repro.runtime.tokens.
    TokenFactory`; checkpoint seals and recovery-announcement seals are
    HMACs under the same per-host key that signs capability tokens.
    ``high_water`` and ``recoveries`` model sealed monotonic counters
    (e.g. TPM registers): the storage attacker can replace the
    checkpoint and the log, but cannot wind these back, which is what
    makes rollback detectable.
    """

    def __init__(
        self, host: str, factory, interval: int = 4, backend=None
    ) -> None:
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.host = host
        self._factory = factory
        #: optional persistent tier (a
        #: :class:`~repro.runtime.storage.base.StorageBackend`).  The
        #: in-memory structures above stay authoritative — the backend
        #: receives sealed *copies* so a fresh process can rehydrate.
        #: ``None`` (the default) persists nothing and costs nothing.
        self.backend = backend
        #: processed-message count between checkpoints.
        self.interval = interval
        self.checkpoint: Optional[Checkpoint] = None
        #: mutations since the last checkpoint, in apply order.
        self.wal: List[Tuple] = []
        #: sealed monotonic counter: epoch of the latest legitimate
        #: checkpoint.  Not writable from stable storage.
        self.high_water = 0
        #: sealed monotonic counter of completed recoveries (makes
        #: every announcement unique, so replays are detectable).
        self.recoveries = 0
        #: messages processed since the last checkpoint.
        self.processed = 0
        #: lifetime statistics.
        self.checkpoints_taken = 0

    # -- write path --------------------------------------------------------

    def log(self, *entry: Any) -> None:
        """Append one mutation record to the write-ahead log."""
        self.wal.append(entry)
        if self.backend is not None:
            self._persist_wal(len(self.wal) - 1, entry)

    def take_checkpoint(self, state: Dict[str, Any]) -> Checkpoint:
        """Seal ``state`` as the new checkpoint and compact the WAL."""
        epoch = self.high_water + 1
        checkpoint = Checkpoint(self.host, epoch, state)
        checkpoint.seal = self._factory.seal(
            "checkpoint", checkpoint.message_body()
        )
        self.checkpoint = checkpoint
        self.high_water = epoch
        self.wal = []
        self.processed = 0
        self.checkpoints_taken += 1
        if self.backend is not None:
            self._persist_checkpoint(checkpoint)
        return checkpoint

    # -- persistent tier (write-through copies) ----------------------------

    def _persist_wal(self, index: int, entry: Tuple) -> None:
        """Write one sealed WAL record through to the backend.

        The row seal binds (epoch, index, record) under the host key, so
        a storage attacker can neither forge, reorder, nor splice
        records across epochs."""
        blob = _codec.dumps(entry)
        seal = self._factory.seal(
            "wal-record", b"%d|%d|" % (self.high_water, index) + blob.encode()
        )
        _STATS.appends += 1
        self.backend.append_wal(self.high_water, index, blob, seal)

    def _persist_checkpoint(self, checkpoint: Checkpoint) -> None:
        """Write the sealed checkpoint snapshot through to the backend
        (which compacts the persisted WAL rows it supersedes)."""
        blob = _codec.dumps(checkpoint.state)
        seal = self._factory.seal(
            "checkpoint-blob", b"%d|" % checkpoint.epoch + blob.encode()
        )
        _STATS.checkpoints += 1
        self.backend.save_checkpoint(checkpoint.epoch, blob, seal)

    def republish(self) -> None:
        """Re-write the current checkpoint and WAL through a newly
        attached backend, so a store that lived memory-only until now
        becomes rehydratable from this point on."""
        if self.backend is None:
            return
        self.backend.reset_run()
        if self.checkpoint is not None:
            self._persist_checkpoint(self.checkpoint)
        for index, entry in enumerate(self.wal):
            self._persist_wal(index, entry)

    def reset(self, interval: Optional[int] = None) -> None:
        """Clear the store in place for session recycling.

        Drops the checkpoint, the WAL, and the sealed counters back to
        their freshly constructed values — the recycled session is a new
        storage lifetime, not a continuation, so winding ``high_water``
        back here is not a rollback the tamper check must catch.  The
        host key (via the shared factory) is deliberately kept: it is a
        per-(split, registry) artifact of the runtime image.
        """
        if interval is not None:
            if interval < 1:
                raise ValueError("checkpoint interval must be >= 1")
            self.interval = interval
        self.checkpoint = None
        self.wal.clear()
        self.high_water = 0
        self.recoveries = 0
        self.processed = 0
        self.checkpoints_taken = 0
        if self.backend is not None:
            self.backend.reset_run()

    # -- recovery path -----------------------------------------------------

    def load(self) -> Tuple[Dict[str, Any], List[Tuple]]:
        """Verify and return (state copy, WAL suffix) for recovery.

        Raises :class:`CheckpointTamperError` — fail closed — when the
        checkpoint is missing, its seal does not verify, or its epoch
        disagrees with the sealed ``high_water`` counter (rollback).
        """
        checkpoint = self.checkpoint
        if checkpoint is None:
            raise CheckpointTamperError(
                f"{self.host}: no checkpoint in stable storage"
            )
        if not self._factory.verify_seal(
            self.host, "checkpoint", checkpoint.message_body(),
            checkpoint.seal,
        ):
            raise CheckpointTamperError(
                f"{self.host}: checkpoint seal verification failed"
            )
        if checkpoint.epoch != self.high_water:
            raise CheckpointTamperError(
                f"{self.host}: checkpoint epoch {checkpoint.epoch} does not "
                f"match the sealed counter {self.high_water} (rollback)"
            )
        return copy_state(checkpoint.state), list(self.wal)
