"""The simulated network connecting the hosts of a split program.

Models the environment of Section 3.1: reliable, in-order, pairwise
channels that outsiders cannot intercept (we simply never deliver a
message to anyone but its addressee; SSL's cost shows up in the latency
model).  The network also keeps the books the evaluation needs:

* message counts by kind (Table 1's rows);
* eliminated data-forward round trips (Table 1's last row);
* a simulated clock driven by a configurable cost model calibrated to
  the paper's testbed (310 µs LAN ping, ≥640 µs SSL round trip);
* a complete message log for the security-assurance instrumentation
  (tests assert no message ever carries data to a host whose
  confidentiality label cannot hold it).

With a :class:`~repro.runtime.faults.FaultInjector` attached, the
channels stop being reliable: messages may be dropped, duplicated,
reordered, delayed, and hosts may crash and restart.  The network then
runs a reliable-delivery protocol on top — per-channel sequence
numbers and per-message idempotency keys, ack/retry with exponential
backoff, receiver-side duplicate suppression — whose retransmissions
show up in the message counts and the simulated clock.  A message that
cannot be delivered within the retry budget raises
:class:`DeliveryTimeoutError`: the run fails closed, never answers
wrong.  With no injector attached every code path, count, and clock
charge is exactly the fault-free Section 3.1 model.
"""

from __future__ import annotations

import itertools
from collections import Counter, deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from .faults import FaultInjector, RetryPolicy

#: Message kinds that transfer control (one message each).
CONTROL_KINDS = ("rgoto", "lgoto")
#: Message kinds that are request/reply round trips (two messages each).
ROUNDTRIP_KINDS = ("getField", "setField", "forward", "sync")


class CostModel:
    """Simulated-time costs, calibrated to the Section 7.2 testbed."""

    def __init__(
        self,
        one_way_latency: float = 320e-6,
        check_cost: float = 5e-6,
        hash_cost: float = 100e-6,
        op_cost: float = 1e-6,
    ) -> None:
        #: one-way application-to-application latency over SSL (the paper
        #: measured a ≥640 µs round trip for a null RMI call over SSL).
        self.one_way_latency = one_way_latency
        #: validating one incoming request (access control, digest).
        self.check_cost = check_cost
        #: hashing a capability token (MD5 in the paper).
        self.hash_cost = hash_cost
        #: executing one local operation.
        self.op_cost = op_cost


class Message:
    """One network message."""

    __slots__ = ("kind", "src", "dst", "payload", "data_labels", "msg_id",
                 "seq")

    def __init__(
        self,
        kind: str,
        src: str,
        dst: str,
        payload: Dict[str, Any],
        data_labels: Optional[List] = None,
        msg_id: Optional[int] = None,
        seq: Optional[int] = None,
    ) -> None:
        self.kind = kind
        self.src = src
        self.dst = dst
        self.payload = payload
        #: labels of confidential data carried (for instrumentation).
        self.data_labels = data_labels or []
        #: idempotency key: retransmissions and duplicates share it, so
        #: receivers can suppress re-execution (None on reliable nets).
        self.msg_id = msg_id
        #: per-(src, dst) channel sequence number.
        self.seq = seq

    def __repr__(self) -> str:
        return f"Message({self.kind} {self.src}->{self.dst})"


class DeliveryTimeoutError(RuntimeError):
    """A message exhausted its retry budget: the run fails closed."""

    def __init__(self, message: Message, attempts: int) -> None:
        super().__init__(
            f"{message.kind} {message.src}->{message.dst} undeliverable "
            f"after {attempts} attempts; failing closed"
        )
        self.message_kind = message.kind
        self.src = message.src
        self.dst = message.dst
        self.attempts = attempts


class SecurityAbort(RuntimeError):
    """A detected protocol violation terminated the run fail-closed.

    Raised by the quarantine layer (Section 3.2's threat model: a bad
    host gains nothing, and good hosts stop talking to it) instead of
    letting a rejected request silently stall the executor.  Carries
    the offending host (``None`` when the violation is local, e.g.
    tampered stable storage discovered during recovery) and the host
    that detected it.
    """

    def __init__(
        self, offender: Optional[str], victim: Optional[str], why: str
    ) -> None:
        super().__init__(
            f"security abort ({offender or 'local'} vs {victim or '?'}): "
            f"{why}"
        )
        self.offender = offender
        self.victim = victim
        self.why = why


class SimNetwork:
    """Message transport, accounting, and the control-message queue."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        faults: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.cost = cost_model or CostModel()
        self.clock = 0.0
        #: time spent validating incoming requests (Section 7.3).
        self.check_time = 0.0
        #: time spent hashing tokens (Section 7.3).
        self.hash_time = 0.0
        self.counts: Counter = Counter()
        self.eliminated_roundtrips = 0
        self.message_log: List[Message] = []
        self.audit_log: List[str] = []
        #: (label, host) pairs: data with this label became visible to host.
        self.flow_log: List = []
        #: whether to retain per-message/per-flow event objects.  The
        #: logs exist for collectors — the security-assurance checks and
        #: the tracer — not for the run's observables (counts, clock, ICS
        #: depths), so a throughput driver with no collector attached
        #: turns this off and skips building the trace events entirely.
        #: Attaching a :class:`~repro.runtime.trace.Tracer` switches it
        #: back on.
        self.record_logs = True
        #: fault injector; None restores the reliable Section 3.1 channels.
        self.faults = faults
        self.retry = retry or RetryPolicy()
        #: (kind, src, dst, detail) tuples for drop/retry/crash/restart/...
        self.fault_events: List[Tuple[str, Optional[str], Optional[str], str]] = []
        self.fault_counts: Counter = Counter()
        self._listeners: List[Callable[..., None]] = []
        self._msg_ids = itertools.count(1)
        self._seq: Counter = Counter()
        self._queue: Deque[Message] = deque()
        self._handlers: Dict[str, Callable[[Message], Any]] = {}
        #: host -> (on_crash, on_restart) hooks, used in volatile crash
        #: mode to wipe a host's state and drive its recovery.
        self._crash_hooks: Dict[
            str, Tuple[Optional[Callable[[], None]], Optional[Callable[[], None]]]
        ] = {}
        #: quarantine layer: off by default (rejected requests are
        #: silently ignored, the paper's Figure 6 behaviour).  When on,
        #: a rejected *remote* request raises :class:`SecurityAbort` and
        #: blacklists the offender.
        self.quarantine_enabled = False
        self.quarantined: set = set()

    def reset(
        self,
        faults: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        """Reset-in-place to a freshly constructed network.

        Host registrations (handlers, crash hooks) survive — they are
        session wiring, not run state — while every piece of per-run
        accounting is cleared: clock, counts, logs, channel sequence
        numbers, idempotency-key counter, the control queue, fault
        events, event listeners, and the quarantine set.  Also uninstalls
        any instance-level ``_account`` override (the tracer patches one
        in), so a previously traced session stops tracing when recycled.
        """
        self.clock = 0.0
        self.check_time = 0.0
        self.hash_time = 0.0
        self.counts.clear()
        self.eliminated_roundtrips = 0
        self.message_log.clear()
        self.audit_log.clear()
        self.flow_log.clear()
        self.faults = faults
        self.retry = retry or RetryPolicy()
        self.fault_events.clear()
        self.fault_counts.clear()
        self._listeners.clear()
        self._msg_ids = itertools.count(1)
        self._seq.clear()
        self._queue.clear()
        self.quarantine_enabled = False
        self.quarantined.clear()
        self.__dict__.pop("_account", None)

    # -- host registration -----------------------------------------------------

    def register(
        self,
        host: str,
        handler: Callable[[Message], Any],
        on_crash: Optional[Callable[[], None]] = None,
        on_restart: Optional[Callable[[], None]] = None,
    ) -> None:
        self._handlers[host] = handler
        if on_crash is not None or on_restart is not None:
            self._crash_hooks[host] = (on_crash, on_restart)

    @property
    def hosts(self) -> List[str]:
        return list(self._handlers)

    # -- accounting helpers ------------------------------------------------------

    def _account(self, message: Message, messages: int) -> None:
        self.counts[message.kind] += 1
        self.counts["messages"] += messages
        if message.src != message.dst:
            self.clock += messages * self.cost.one_way_latency
        if self.record_logs:
            self.message_log.append(message)

    def charge_check(self) -> None:
        self.clock += self.cost.check_cost
        self.check_time += self.cost.check_cost

    def charge_hash(self) -> None:
        self.clock += self.cost.hash_cost
        self.hash_time += self.cost.hash_cost

    def charge_ops(self, count: int) -> None:
        self.clock += count * self.cost.op_cost

    def note_eliminated(self, count: int) -> None:
        self.eliminated_roundtrips += count

    def audit(self, host: str, why: str) -> None:
        self.audit_log.append(f"{host}: {why}")

    def flow(self, label, host: str) -> None:
        """Record that data labeled ``label`` became visible to ``host``."""
        if self.record_logs:
            self.flow_log.append((label, host))

    # -- quarantine --------------------------------------------------------------

    def quarantine(self, offender: str, victim: str, why: str) -> None:
        """Blacklist ``offender`` and unwind the run with
        :class:`SecurityAbort` (only called when ``quarantine_enabled``)."""
        self.audit(victim, f"quarantining {offender}: {why}")
        self._emit("quarantine", offender, victim, why)
        self.quarantined.add(offender)
        raise SecurityAbort(offender, victim, why)

    def _check_quarantine(self, message: Message) -> None:
        if self.quarantine_enabled and message.src in self.quarantined:
            raise SecurityAbort(
                message.src,
                message.dst,
                f"{message.kind} refused: {message.src} is quarantined",
            )

    # -- fault events ------------------------------------------------------------

    def on_event(self, callback: Callable[..., None]) -> None:
        """Subscribe to fault events: callback(kind, src, dst, detail)."""
        self._listeners.append(callback)

    def _emit(
        self, kind: str, src: Optional[str], dst: Optional[str], detail: str
    ) -> None:
        self.fault_events.append((kind, src, dst, detail))
        self.fault_counts[kind] += 1
        for callback in self._listeners:
            callback(kind, src, dst, detail)

    def _stamp(self, message: Message) -> None:
        """Assign the idempotency key and channel sequence number."""
        if message.msg_id is None:
            message.msg_id = next(self._msg_ids)
            channel = (message.src, message.dst)
            self._seq[channel] += 1
            message.seq = self._seq[channel]

    # -- synchronous round trips ----------------------------------------------------

    def request(self, message: Message) -> Any:
        """A request/reply exchange (getField, setField, forward, sync).

        Counts two messages (the paper's "×2" rows), except local calls,
        which never touch the network.
        """
        handler = self._handlers.get(message.dst)
        if handler is None:
            raise KeyError(f"unknown host {message.dst!r}")
        if message.src == message.dst:
            return handler(message)
        self._check_quarantine(message)
        if self.faults is None:
            self._account(message, messages=2)
            return handler(message)
        return self._deliver_reliably(message, handler, roundtrip=True)

    def one_way(self, message: Message, messages: int = 1) -> Any:
        """A one-message exchange (asynchronous forward at opt level 2)."""
        handler = self._handlers.get(message.dst)
        if handler is None:
            raise KeyError(f"unknown host {message.dst!r}")
        if message.src == message.dst:
            return handler(message)
        self._check_quarantine(message)
        if self.faults is None:
            self._account(message, messages=messages)
            return handler(message)
        # Under faults even "unacknowledged" sends ride the reliable
        # layer: without an ack there is no way to mask a loss.
        return self._deliver_reliably(message, handler, roundtrip=False)

    def _deliver_reliably(
        self, message: Message, handler: Callable[[Message], Any], roundtrip: bool
    ) -> Any:
        """Ack/retry loop for a synchronous exchange under faults."""
        self._stamp(message)
        attempt = 0
        waited = 0.0
        while True:
            delivered, result = self._try_deliver(message, handler, roundtrip)
            if delivered:
                return result
            # The ack never came: wait out the retransmission timer.
            timer = self.retry.timeout(attempt)
            self.clock += timer
            waited += timer
            attempt += 1
            if attempt > self.retry.max_retries or self.retry.past_deadline(
                waited
            ):
                self._emit(
                    "timeout", message.src, message.dst,
                    f"{message.kind} #{message.msg_id} gave up after "
                    f"{attempt} attempts ({waited:.3f}s of timers)",
                )
                raise DeliveryTimeoutError(message, attempt)
            self._emit(
                "retry", message.src, message.dst,
                f"{message.kind} #{message.msg_id} attempt {attempt + 1}",
            )

    def _volatile_crashes(self) -> bool:
        return (
            self.faults is not None
            and self.faults.policy.crash_mode == "volatile"
        )

    def _host_crashed(self, message: Message) -> None:
        """Bookkeeping for a crash at receipt of ``message``: in volatile
        mode the destination's state is wiped on the spot."""
        dst = message.dst
        self._account(message, messages=1)
        self._emit(
            "crash", None, dst,
            f"{dst} crashed on receipt of {message.kind} "
            f"#{message.msg_id}",
        )
        if self._volatile_crashes():
            hooks = self._crash_hooks.get(dst)
            if hooks is not None and hooks[0] is not None:
                hooks[0]()

    def _host_restarted(self, dst: str) -> None:
        """Bookkeeping for a restart: in volatile mode the host runs its
        recovery protocol (checkpoint + WAL replay + announcement)
        before the pending delivery proceeds."""
        self._emit("restart", None, dst, f"{dst} back up")
        if self._volatile_crashes():
            hooks = self._crash_hooks.get(dst)
            if hooks is not None and hooks[1] is not None:
                hooks[1]()

    def _try_deliver(
        self, message: Message, handler: Callable[[Message], Any], roundtrip: bool
    ) -> Tuple[bool, Any]:
        """One transmission attempt; (False, None) means 'no ack'."""
        faults = self.faults
        dst = message.dst
        if faults.check_restart(dst, self.clock):
            self._host_restarted(dst)
        if faults.is_down(dst, self.clock):
            self._account(message, messages=1)
            self._emit(
                "drop", message.src, dst,
                f"{message.kind} #{message.msg_id}: {dst} is down",
            )
            return False, None
        if faults.maybe_crash(dst, self.clock, message.kind):
            self._host_crashed(message)
            return False, None
        if faults.should_drop():
            self._account(message, messages=1)
            self._emit(
                "drop", message.src, dst,
                f"{message.kind} #{message.msg_id} lost in transit",
            )
            return False, None
        self.clock += faults.jitter()
        if roundtrip and faults.should_drop():
            # The request arrived and was processed, but the reply was
            # lost: the receiver's duplicate suppression makes the
            # retransmission harmless.
            self._account(message, messages=2)
            handler(message)
            self._emit(
                "drop", dst, message.src,
                f"reply to {message.kind} #{message.msg_id} lost",
            )
            return False, None
        self._account(message, messages=2 if roundtrip else 1)
        result = handler(message)
        if faults.should_duplicate():
            self.counts["messages"] += 1
            self._emit(
                "duplicate", message.src, dst,
                f"{message.kind} #{message.msg_id} delivered twice",
            )
            handler(message)
        return True, result

    # -- control transfers -------------------------------------------------------

    def post(self, message: Message) -> None:
        """Queue a control transfer (rgoto/lgoto) for the executor loop."""
        if message.src == message.dst:
            self._queue.append(message)
            return
        self._check_quarantine(message)
        if self.faults is None:
            self._account(message, messages=1)
            self._queue.append(message)
            return
        self._stamp(message)
        attempt = 0
        waited = 0.0
        while True:
            if self._try_post(message):
                return
            timer = self.retry.timeout(attempt)
            self.clock += timer
            waited += timer
            attempt += 1
            if attempt > self.retry.max_retries or self.retry.past_deadline(
                waited
            ):
                self._emit(
                    "timeout", message.src, message.dst,
                    f"{message.kind} #{message.msg_id} gave up after "
                    f"{attempt} attempts ({waited:.3f}s of timers)",
                )
                raise DeliveryTimeoutError(message, attempt)
            self._emit(
                "retry", message.src, message.dst,
                f"{message.kind} #{message.msg_id} attempt {attempt + 1}",
            )

    def _try_post(self, message: Message) -> bool:
        """One transmission attempt into the destination's inbox."""
        faults = self.faults
        dst = message.dst
        if faults.check_restart(dst, self.clock):
            self._host_restarted(dst)
        if faults.is_down(dst, self.clock):
            self._account(message, messages=1)
            self._emit(
                "drop", message.src, dst,
                f"{message.kind} #{message.msg_id}: {dst} is down",
            )
            return False
        if faults.maybe_crash(dst, self.clock, message.kind):
            self._host_crashed(message)
            return False
        if faults.should_drop():
            self._account(message, messages=1)
            self._emit(
                "drop", message.src, dst,
                f"{message.kind} #{message.msg_id} lost in transit",
            )
            return False
        self.clock += faults.jitter()
        self._account(message, messages=1)
        self._enqueue(message)
        if faults.should_duplicate():
            self.counts["messages"] += 1
            self._emit(
                "duplicate", message.src, dst,
                f"{message.kind} #{message.msg_id} delivered twice",
            )
            self._enqueue(message)
        return True

    def _enqueue(self, message: Message) -> None:
        slot = self.faults.reorder_slot(len(self._queue))
        if slot is None:
            self._queue.append(message)
        else:
            self._emit(
                "reorder", message.src, message.dst,
                f"{message.kind} #{message.msg_id} inserted at slot {slot}",
            )
            self._queue.insert(slot, message)

    def pop_control(self) -> Optional[Message]:
        return self._queue.popleft() if self._queue else None

    @property
    def pending_control(self) -> int:
        return len(self._queue)

    # -- reporting ------------------------------------------------------------------

    def table_counts(self) -> Dict[str, int]:
        """The Table 1 accounting: round-trip kinds reported singly
        (each costs two messages), control kinds as message counts."""
        return {
            "forward": self.counts.get("forward", 0),
            "getField": self.counts.get("getField", 0),
            "setField": self.counts.get("setField", 0),
            "sync": self.counts.get("sync", 0),
            "lgoto": self.counts.get("lgoto", 0),
            "rgoto": self.counts.get("rgoto", 0),
            "total_messages": self.counts.get("messages", 0),
            "eliminated": self.eliminated_roundtrips,
        }
