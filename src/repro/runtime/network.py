"""The simulated network connecting the hosts of a split program.

Models the environment of Section 3.1: reliable, in-order, pairwise
channels that outsiders cannot intercept (we simply never deliver a
message to anyone but its addressee; SSL's cost shows up in the latency
model).  The network also keeps the books the evaluation needs:

* message counts by kind (Table 1's rows);
* eliminated data-forward round trips (Table 1's last row);
* a simulated clock driven by a configurable cost model calibrated to
  the paper's testbed (310 µs LAN ping, ≥640 µs SSL round trip);
* a complete message log for the security-assurance instrumentation
  (tests assert no message ever carries data to a host whose
  confidentiality label cannot hold it).

With a :class:`~repro.runtime.faults.FaultInjector` attached, the
channels stop being reliable: messages may be dropped, duplicated,
reordered, delayed, and hosts may crash and restart.  The network then
runs a reliable-delivery protocol on top — per-channel sequence
numbers and per-message idempotency keys, ack/retry with exponential
backoff, receiver-side duplicate suppression — whose retransmissions
show up in the message counts and the simulated clock.  A message that
cannot be delivered within the retry budget raises
:class:`DeliveryTimeoutError`: the run fails closed, never answers
wrong.  With no injector attached every code path, count, and clock
charge is exactly the fault-free Section 3.1 model.

:class:`SimNetwork` is the default implementation of the pluggable
:class:`~repro.runtime.transport.base.Transport` contract; the message
envelope, cost model, accounting core, and fail-closed error taxonomy
live in :mod:`repro.runtime.transport.base` (re-exported here under
their historical names) so the real TCP backend in
:mod:`repro.runtime.transport.tcp` charges bit-identically.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from .faults import FaultInjector, RetryPolicy
from .transport.base import (
    CONTROL_KINDS,
    ROUNDTRIP_KINDS,
    CostModel,
    DeliveryTimeoutError,
    Message,
    SecurityAbort,
    Transport,
)

__all__ = [
    "CONTROL_KINDS",
    "ROUNDTRIP_KINDS",
    "CostModel",
    "DeliveryTimeoutError",
    "Message",
    "SecurityAbort",
    "SimNetwork",
    "Transport",
]


class SimNetwork(Transport):
    """Message transport, accounting, and the control-message queue."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        faults: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(cost_model)
        #: fault injector; None restores the reliable Section 3.1 channels.
        self.faults = faults
        self.retry = retry or RetryPolicy()
        self._handlers: Dict[str, Callable[[Message], Any]] = {}
        #: host -> (on_crash, on_restart) hooks, used in volatile crash
        #: mode to wipe a host's state and drive its recovery.
        self._crash_hooks: Dict[
            str, Tuple[Optional[Callable[[], None]], Optional[Callable[[], None]]]
        ] = {}

    def reset(
        self,
        faults: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        """Reset-in-place to a freshly constructed network.

        Host registrations (handlers, crash hooks) survive — they are
        session wiring, not run state — while every piece of per-run
        accounting is cleared: clock, counts, logs, channel sequence
        numbers, idempotency-key counter, the control queue, fault
        events, event listeners, the quarantine set, and the
        log-recording flag (a session recycled out of a lean-logging
        ``record_logs=False`` run records again by default).  Also
        uninstalls any instance-level ``_account`` override (the tracer
        patches one in), so a previously traced session stops tracing
        when recycled.
        """
        self.reset_run_state()
        self.faults = faults
        self.retry = retry or RetryPolicy()

    # -- host registration -----------------------------------------------------

    def register(
        self,
        host: str,
        handler: Callable[[Message], Any],
        on_crash: Optional[Callable[[], None]] = None,
        on_restart: Optional[Callable[[], None]] = None,
    ) -> None:
        self._handlers[host] = handler
        if on_crash is not None or on_restart is not None:
            self._crash_hooks[host] = (on_crash, on_restart)

    @property
    def hosts(self) -> List[str]:
        return list(self._handlers)

    # -- synchronous round trips ----------------------------------------------------

    def request(self, message: Message) -> Any:
        """A request/reply exchange (getField, setField, forward, sync).

        Counts two messages (the paper's "×2" rows), except local calls,
        which never touch the network.
        """
        handler = self._handlers.get(message.dst)
        if handler is None:
            raise KeyError(f"unknown host {message.dst!r}")
        if message.src == message.dst:
            return handler(message)
        self._check_quarantine(message)
        if self.faults is None:
            self._account(message, messages=2)
            return handler(message)
        return self._deliver_reliably(message, handler, roundtrip=True)

    def one_way(self, message: Message, messages: int = 1) -> Any:
        """A one-message exchange (asynchronous forward at opt level 2)."""
        handler = self._handlers.get(message.dst)
        if handler is None:
            raise KeyError(f"unknown host {message.dst!r}")
        if message.src == message.dst:
            return handler(message)
        self._check_quarantine(message)
        if self.faults is None:
            self._account(message, messages=messages)
            return handler(message)
        # Under faults even "unacknowledged" sends ride the reliable
        # layer: without an ack there is no way to mask a loss.
        return self._deliver_reliably(message, handler, roundtrip=False)

    def _deliver_reliably(
        self, message: Message, handler: Callable[[Message], Any], roundtrip: bool
    ) -> Any:
        """Ack/retry loop for a synchronous exchange under faults."""
        self._stamp(message)
        attempt = 0
        waited = 0.0
        while True:
            delivered, result = self._try_deliver(message, handler, roundtrip)
            if delivered:
                return result
            # The ack never came: wait out the retransmission timer.
            timer = self.retry.timeout(attempt)
            self.clock += timer
            waited += timer
            attempt += 1
            if attempt > self.retry.max_retries or self.retry.past_deadline(
                waited
            ):
                self._emit(
                    "timeout", message.src, message.dst,
                    f"{message.kind} #{message.msg_id} gave up after "
                    f"{attempt} attempts ({waited:.3f}s of timers)",
                )
                raise DeliveryTimeoutError(message, attempt)
            self._emit(
                "retry", message.src, message.dst,
                f"{message.kind} #{message.msg_id} attempt {attempt + 1}",
            )

    def _volatile_crashes(self) -> bool:
        return (
            self.faults is not None
            and self.faults.policy.crash_mode == "volatile"
        )

    def _host_crashed(self, message: Message) -> None:
        """Bookkeeping for a crash at receipt of ``message``: in volatile
        mode the destination's state is wiped on the spot."""
        dst = message.dst
        self._account(message, messages=1)
        self._emit(
            "crash", None, dst,
            f"{dst} crashed on receipt of {message.kind} "
            f"#{message.msg_id}",
        )
        if self._volatile_crashes():
            hooks = self._crash_hooks.get(dst)
            if hooks is not None and hooks[0] is not None:
                hooks[0]()

    def _host_restarted(self, dst: str) -> None:
        """Bookkeeping for a restart: in volatile mode the host runs its
        recovery protocol (checkpoint + WAL replay + announcement)
        before the pending delivery proceeds."""
        self._emit("restart", None, dst, f"{dst} back up")
        if self._volatile_crashes():
            hooks = self._crash_hooks.get(dst)
            if hooks is not None and hooks[1] is not None:
                hooks[1]()

    def _try_deliver(
        self, message: Message, handler: Callable[[Message], Any], roundtrip: bool
    ) -> Tuple[bool, Any]:
        """One transmission attempt; (False, None) means 'no ack'."""
        faults = self.faults
        dst = message.dst
        if faults.check_restart(dst, self.clock):
            self._host_restarted(dst)
        if faults.is_down(dst, self.clock):
            self._account(message, messages=1)
            self._emit(
                "drop", message.src, dst,
                f"{message.kind} #{message.msg_id}: {dst} is down",
            )
            return False, None
        if faults.maybe_crash(dst, self.clock, message.kind):
            self._host_crashed(message)
            return False, None
        if faults.should_drop():
            self._account(message, messages=1)
            self._emit(
                "drop", message.src, dst,
                f"{message.kind} #{message.msg_id} lost in transit",
            )
            return False, None
        self.clock += faults.jitter()
        if roundtrip and faults.should_drop():
            # The request arrived and was processed, but the reply was
            # lost: the receiver's duplicate suppression makes the
            # retransmission harmless.
            self._account(message, messages=2)
            handler(message)
            self._emit(
                "drop", dst, message.src,
                f"reply to {message.kind} #{message.msg_id} lost",
            )
            return False, None
        self._account(message, messages=2 if roundtrip else 1)
        result = handler(message)
        if faults.should_duplicate():
            self.counts["messages"] += 1
            self._emit(
                "duplicate", message.src, dst,
                f"{message.kind} #{message.msg_id} delivered twice",
            )
            handler(message)
        return True, result

    # -- control transfers -------------------------------------------------------

    def post(self, message: Message) -> None:
        """Queue a control transfer (rgoto/lgoto) for the executor loop."""
        if message.src == message.dst:
            self._queue.append(message)
            return
        self._check_quarantine(message)
        if self.faults is None:
            self._account(message, messages=1)
            self._queue.append(message)
            return
        self._stamp(message)
        attempt = 0
        waited = 0.0
        while True:
            if self._try_post(message):
                return
            timer = self.retry.timeout(attempt)
            self.clock += timer
            waited += timer
            attempt += 1
            if attempt > self.retry.max_retries or self.retry.past_deadline(
                waited
            ):
                self._emit(
                    "timeout", message.src, message.dst,
                    f"{message.kind} #{message.msg_id} gave up after "
                    f"{attempt} attempts ({waited:.3f}s of timers)",
                )
                raise DeliveryTimeoutError(message, attempt)
            self._emit(
                "retry", message.src, message.dst,
                f"{message.kind} #{message.msg_id} attempt {attempt + 1}",
            )

    def _try_post(self, message: Message) -> bool:
        """One transmission attempt into the destination's inbox."""
        faults = self.faults
        dst = message.dst
        if faults.check_restart(dst, self.clock):
            self._host_restarted(dst)
        if faults.is_down(dst, self.clock):
            self._account(message, messages=1)
            self._emit(
                "drop", message.src, dst,
                f"{message.kind} #{message.msg_id}: {dst} is down",
            )
            return False
        if faults.maybe_crash(dst, self.clock, message.kind):
            self._host_crashed(message)
            return False
        if faults.should_drop():
            self._account(message, messages=1)
            self._emit(
                "drop", message.src, dst,
                f"{message.kind} #{message.msg_id} lost in transit",
            )
            return False
        self.clock += faults.jitter()
        self._account(message, messages=1)
        self._enqueue(message)
        if faults.should_duplicate():
            self.counts["messages"] += 1
            self._emit(
                "duplicate", message.src, dst,
                f"{message.kind} #{message.msg_id} delivered twice",
            )
            self._enqueue(message)
        return True

    def _enqueue(self, message: Message) -> None:
        slot = self.faults.reorder_slot(len(self._queue))
        if slot is None:
            self._queue.append(message)
        else:
            self._emit(
                "reorder", message.src, message.dst,
                f"{message.kind} #{message.msg_id} inserted at slot {slot}",
            )
            self._queue.insert(slot, message)
