"""The simulated network connecting the hosts of a split program.

Models the environment of Section 3.1: reliable, in-order, pairwise
channels that outsiders cannot intercept (we simply never deliver a
message to anyone but its addressee; SSL's cost shows up in the latency
model).  The network also keeps the books the evaluation needs:

* message counts by kind (Table 1's rows);
* eliminated data-forward round trips (Table 1's last row);
* a simulated clock driven by a configurable cost model calibrated to
  the paper's testbed (310 µs LAN ping, ≥640 µs SSL round trip);
* a complete message log for the security-assurance instrumentation
  (tests assert no message ever carries data to a host whose
  confidentiality label cannot hold it).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Callable, Deque, Dict, List, Optional

#: Message kinds that transfer control (one message each).
CONTROL_KINDS = ("rgoto", "lgoto")
#: Message kinds that are request/reply round trips (two messages each).
ROUNDTRIP_KINDS = ("getField", "setField", "forward", "sync")


class CostModel:
    """Simulated-time costs, calibrated to the Section 7.2 testbed."""

    def __init__(
        self,
        one_way_latency: float = 320e-6,
        check_cost: float = 5e-6,
        hash_cost: float = 100e-6,
        op_cost: float = 1e-6,
    ) -> None:
        #: one-way application-to-application latency over SSL (the paper
        #: measured a ≥640 µs round trip for a null RMI call over SSL).
        self.one_way_latency = one_way_latency
        #: validating one incoming request (access control, digest).
        self.check_cost = check_cost
        #: hashing a capability token (MD5 in the paper).
        self.hash_cost = hash_cost
        #: executing one local operation.
        self.op_cost = op_cost


class Message:
    """One network message."""

    __slots__ = ("kind", "src", "dst", "payload", "data_labels")

    def __init__(
        self,
        kind: str,
        src: str,
        dst: str,
        payload: Dict[str, Any],
        data_labels: Optional[List] = None,
    ) -> None:
        self.kind = kind
        self.src = src
        self.dst = dst
        self.payload = payload
        #: labels of confidential data carried (for instrumentation).
        self.data_labels = data_labels or []

    def __repr__(self) -> str:
        return f"Message({self.kind} {self.src}->{self.dst})"


class SimNetwork:
    """Message transport, accounting, and the control-message queue."""

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost = cost_model or CostModel()
        self.clock = 0.0
        #: time spent validating incoming requests (Section 7.3).
        self.check_time = 0.0
        #: time spent hashing tokens (Section 7.3).
        self.hash_time = 0.0
        self.counts: Counter = Counter()
        self.eliminated_roundtrips = 0
        self.message_log: List[Message] = []
        self.audit_log: List[str] = []
        #: (label, host) pairs: data with this label became visible to host.
        self.flow_log: List = []
        self._queue: Deque[Message] = deque()
        self._handlers: Dict[str, Callable[[Message], Any]] = {}

    # -- host registration -----------------------------------------------------

    def register(self, host: str, handler: Callable[[Message], Any]) -> None:
        self._handlers[host] = handler

    @property
    def hosts(self) -> List[str]:
        return list(self._handlers)

    # -- accounting helpers ------------------------------------------------------

    def _account(self, message: Message, messages: int) -> None:
        self.counts[message.kind] += 1
        self.counts["messages"] += messages
        if message.src != message.dst:
            self.clock += messages * self.cost.one_way_latency
        self.message_log.append(message)

    def charge_check(self) -> None:
        self.clock += self.cost.check_cost
        self.check_time += self.cost.check_cost

    def charge_hash(self) -> None:
        self.clock += self.cost.hash_cost
        self.hash_time += self.cost.hash_cost

    def charge_ops(self, count: int) -> None:
        self.clock += count * self.cost.op_cost

    def note_eliminated(self, count: int) -> None:
        self.eliminated_roundtrips += count

    def audit(self, host: str, why: str) -> None:
        self.audit_log.append(f"{host}: {why}")

    def flow(self, label, host: str) -> None:
        """Record that data labeled ``label`` became visible to ``host``."""
        self.flow_log.append((label, host))

    # -- synchronous round trips ----------------------------------------------------

    def request(self, message: Message) -> Any:
        """A request/reply exchange (getField, setField, forward, sync).

        Counts two messages (the paper's "×2" rows), except local calls,
        which never touch the network.
        """
        handler = self._handlers.get(message.dst)
        if handler is None:
            raise KeyError(f"unknown host {message.dst!r}")
        if message.src == message.dst:
            return handler(message)
        self._account(message, messages=2)
        return handler(message)

    def one_way(self, message: Message, messages: int = 1) -> Any:
        """A one-message exchange (asynchronous forward at opt level 2)."""
        handler = self._handlers.get(message.dst)
        if handler is None:
            raise KeyError(f"unknown host {message.dst!r}")
        if message.src != message.dst:
            self._account(message, messages=messages)
        return handler(message)

    # -- control transfers -------------------------------------------------------

    def post(self, message: Message) -> None:
        """Queue a control transfer (rgoto/lgoto) for the executor loop."""
        if message.src != message.dst:
            self._account(message, messages=1)
        self._queue.append(message)

    def pop_control(self) -> Optional[Message]:
        return self._queue.popleft() if self._queue else None

    @property
    def pending_control(self) -> int:
        return len(self._queue)

    # -- reporting ------------------------------------------------------------------

    def table_counts(self) -> Dict[str, int]:
        """The Table 1 accounting: round-trip kinds reported singly
        (each costs two messages), control kinds as message counts."""
        return {
            "forward": self.counts.get("forward", 0),
            "getField": self.counts.get("getField", 0),
            "setField": self.counts.get("setField", 0),
            "sync": self.counts.get("sync", 0),
            "lgoto": self.counts.get("lgoto", 0),
            "rgoto": self.counts.get("rgoto", 0),
            "total_messages": self.counts.get("messages", 0),
            "eliminated": self.eliminated_roundtrips,
        }
