"""The distributed runtime (Section 5): hosts, tokens, ICS, network."""

from .attacks import Adversary, AttackReport
from .checkpoint import Checkpoint, CheckpointTamperError, DurableStore
from .executor import DistributedExecutor, ExecutionResult, run_split_program
from .faults import CrashPointInjector, FaultInjector, FaultPolicy, RetryPolicy
from .faultsweep import (
    CrashSweepReport,
    SweepReport,
    crash_point_sweep,
    random_policy,
    sweep,
)
from .host import HaltSignal, TrustedHost
from .ics import LocalStack
from .session import (
    MultiSessionDriver,
    RuntimeImage,
    Session,
    SessionPool,
)
from .network import (
    CostModel,
    DeliveryTimeoutError,
    Message,
    SecurityAbort,
    SimNetwork,
)
from .singlehost import SingleHostInterpreter, run_single_host
from .storage import (
    SessionStorage,
    StorageError,
    StorageUnavailableError,
    TransientStorageError,
    rehydrate_session,
)
from .tokens import Token, TokenFactory, forged_token
from .values import FrameID, ObjectRef, ReturnInfo

__all__ = [
    "Adversary",
    "AttackReport",
    "Checkpoint",
    "CheckpointTamperError",
    "DurableStore",
    "DistributedExecutor",
    "ExecutionResult",
    "run_split_program",
    "CrashPointInjector",
    "FaultInjector",
    "FaultPolicy",
    "RetryPolicy",
    "CrashSweepReport",
    "SweepReport",
    "crash_point_sweep",
    "random_policy",
    "sweep",
    "HaltSignal",
    "TrustedHost",
    "LocalStack",
    "MultiSessionDriver",
    "RuntimeImage",
    "Session",
    "SessionPool",
    "CostModel",
    "DeliveryTimeoutError",
    "Message",
    "SecurityAbort",
    "SimNetwork",
    "SingleHostInterpreter",
    "run_single_host",
    "SessionStorage",
    "StorageError",
    "StorageUnavailableError",
    "TransientStorageError",
    "rehydrate_session",
    "Token",
    "TokenFactory",
    "forged_token",
    "FrameID",
    "ObjectRef",
    "ReturnInfo",
]
