"""The distributed runtime (Section 5): hosts, tokens, ICS, network."""

from .attacks import Adversary, AttackReport
from .executor import DistributedExecutor, ExecutionResult, run_split_program
from .faults import FaultInjector, FaultPolicy, RetryPolicy
from .faultsweep import SweepReport, random_policy, sweep
from .host import HaltSignal, TrustedHost
from .ics import LocalStack
from .network import CostModel, DeliveryTimeoutError, Message, SimNetwork
from .singlehost import SingleHostInterpreter, run_single_host
from .tokens import Token, TokenFactory, forged_token
from .values import FrameID, ObjectRef, ReturnInfo

__all__ = [
    "Adversary",
    "AttackReport",
    "DistributedExecutor",
    "ExecutionResult",
    "run_split_program",
    "FaultInjector",
    "FaultPolicy",
    "RetryPolicy",
    "SweepReport",
    "random_policy",
    "sweep",
    "HaltSignal",
    "TrustedHost",
    "LocalStack",
    "CostModel",
    "DeliveryTimeoutError",
    "Message",
    "SimNetwork",
    "SingleHostInterpreter",
    "run_single_host",
    "Token",
    "TokenFactory",
    "forged_token",
    "FrameID",
    "ObjectRef",
    "ReturnInfo",
]
