"""Run-time value model: object references and frame identifiers."""

from __future__ import annotations

import itertools
from typing import Optional

_object_ids = itertools.count(1)
_frame_ids = itertools.count(1)

#: Sentinel for a validated-and-refused request (Figure 6: invalid
#: requests are ignored and logged, never answered).  Lives here — the
#: bottom of the runtime import graph — so both the host and the
#: checkpoint encoder can name it; :mod:`repro.runtime.host` re-exports
#: it as ``_REJECTED`` for compatibility.
REJECTED = object()


class ObjectRef:
    """A reference to a heap object.

    Objects have global identity; their *fields* live on whatever host
    the splitter assigned each field to, so an ObjectRef is just an id.
    """

    __slots__ = ("cls", "oid")

    def __init__(self, cls: str) -> None:
        self.cls = cls
        self.oid = next(_object_ids)

    def __repr__(self) -> str:
        return f"ObjectRef({self.cls}#{self.oid})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ObjectRef):
            return self.oid == other.oid
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.oid)


class ArrayRef:
    """A handle to an integer array.

    The elements live on the host that allocated the array; the handle
    itself may travel (holding it grants nothing — element access goes
    through the owning host's access checks).
    """

    __slots__ = ("oid", "length", "host", "label")

    def __init__(self, length: int, host, label) -> None:
        if length < 0:
            raise RuntimeError("negative array length")
        self.oid = next(_object_ids)
        self.length = length
        self.host = host
        self.label = label

    def __repr__(self) -> str:
        return f"ArrayRef(#{self.oid}, len={self.length}@{self.host})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ArrayRef):
            return self.oid == other.oid
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.oid)


class FrameID:
    """Identity of one method activation, shared across the hosts that
    hold pieces of its frame (Section 5: FrameID objects)."""

    __slots__ = ("method_key", "fid", "_hash")

    def __init__(self, method_key) -> None:
        self.method_key = method_key
        self.fid = next(_frame_ids)
        # Frames key every variable access; hash once at creation.
        self._hash = hash(self.fid)

    def __repr__(self) -> str:
        cls, name = self.method_key
        return f"FrameID({cls}.{name}#{self.fid})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FrameID):
            return self.fid == other.fid
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash


class ReturnInfo:
    """Where a method activation's return value must be delivered."""

    __slots__ = ("host", "frame", "var")

    def __init__(self, host: Optional[str], frame: Optional[FrameID],
                 var: Optional[str]) -> None:
        self.host = host
        self.frame = frame
        self.var = var

    def __repr__(self) -> str:
        return f"ReturnInfo({self.var}@{self.host})"
