"""Per-principal token-bucket rate limiting for the serve gateway.

The gateway admits execution requests on behalf of *principals* (the
authenticated identity a client presents in its hello frame).  Each
principal gets an independent token bucket: ``burst`` tokens of
capacity refilled at ``rate`` tokens per second of monotonic wall
clock.  A request that finds the bucket empty is shed with a
structured ``rate-limit`` error frame — the connection stays open and
the client may retry after ``retry_after`` seconds.

The buckets use continuous refill (no background timer thread): the
deficit is recomputed lazily from the monotonic clock at each
``allow`` call, so an idle limiter costs nothing and the arithmetic is
exact for any interleaving.  The clock is injectable for deterministic
tests.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple


class TokenBucket:
    """One principal's bucket: ``burst`` capacity, ``rate`` tokens/sec."""

    __slots__ = ("rate", "burst", "tokens", "_last", "_clock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0.0:
            raise ValueError("rate must be positive")
        if burst <= 0.0:
            raise ValueError("burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._clock = clock
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        if elapsed > 0.0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self._last = now

    def allow(self, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; False sheds the request."""
        self._refill()
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def retry_after(self, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens will have accumulated."""
        self._refill()
        deficit = cost - self.tokens
        if deficit <= 0.0:
            return 0.0
        return deficit / self.rate


class PrincipalRateLimiter:
    """Registry of per-principal buckets, created on first sight.

    Every principal gets the same ``rate``/``burst`` policy; the
    buckets themselves are independent, so one over-quota client can
    never starve another (the gateway's isolation requirement).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        #: admitted / shed counters by principal (observability).
        self.admitted: Dict[str, int] = {}
        self.shed: Dict[str, int] = {}

    def _bucket(self, principal: str) -> TokenBucket:
        bucket = self._buckets.get(principal)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, self._clock)
            self._buckets[principal] = bucket
        return bucket

    def admit(self, principal: str, cost: float = 1.0) -> Tuple[bool, float]:
        """Admit or shed one request; returns ``(allowed, retry_after)``.

        ``retry_after`` is 0.0 when admitted, else the seconds the
        principal should wait before retrying (reported verbatim in the
        structured ``rate-limit`` error frame).
        """
        bucket = self._bucket(principal)
        if bucket.allow(cost):
            self.admitted[principal] = self.admitted.get(principal, 0) + 1
            return True, 0.0
        self.shed[principal] = self.shed.get(principal, 0) + 1
        return False, bucket.retry_after(cost)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-principal admission stats for the serve report."""
        out: Dict[str, Dict[str, float]] = {}
        for principal, bucket in sorted(self._buckets.items()):
            bucket._refill()
            out[principal] = {
                "admitted": self.admitted.get(principal, 0),
                "shed": self.shed.get(principal, 0),
                "tokens": round(bucket.tokens, 6),
            }
        return out
