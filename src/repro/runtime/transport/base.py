"""The Transport contract: delivery, registration, accounting, reset.

This module holds everything the runtime's two message transports — the
in-process :class:`~repro.runtime.network.SimNetwork` simulation and the
per-process TCP backend in :mod:`repro.runtime.transport.tcp` — share:

* the :class:`Message` envelope (kind, src, dst, payload, data labels,
  idempotency key, channel sequence number);
* the :class:`CostModel` and the Table 1 accounting core (message
  counts, the simulated clock, check/hash charges, flow/audit/message
  logs, fault events, the quarantine blacklist);
* the fail-closed error taxonomy (:class:`DeliveryTimeoutError`,
  :class:`SecurityAbort`), each carrying (channel, src, dst, seq,
  msg-kind) context so a serve-mode operator can attribute a failure
  to a specific exchange;
* the abstract delivery surface a :class:`~repro.runtime.host.
  TrustedHost` programs against: ``request`` (synchronous round trip),
  ``one_way`` (single acknowledged message), ``post`` (queue a control
  transfer), ``pop_control`` (the executor loop's feed), ``register``
  (handler + crash/restart hooks).

The accounting lives in the base class on purpose: the simulated and
the TCP backend must charge identically — a ``getField`` costs two
messages and two one-way latencies on both — or the distributed run's
observables drift from the Table 1 oracle.  In the TCP backend each
host process accounts only what it locally sends and validates; because
the partitioned program has a single thread of control, summing the
per-host subtotals reproduces the global simulated clock exactly.
"""

from __future__ import annotations

import itertools
from collections import Counter, deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

#: Message kinds that transfer control (one message each).
CONTROL_KINDS = ("rgoto", "lgoto")
#: Message kinds that are request/reply round trips (two messages each).
ROUNDTRIP_KINDS = ("getField", "setField", "forward", "sync")


class CostModel:
    """Simulated-time costs, calibrated to the Section 7.2 testbed."""

    def __init__(
        self,
        one_way_latency: float = 320e-6,
        check_cost: float = 5e-6,
        hash_cost: float = 100e-6,
        op_cost: float = 1e-6,
    ) -> None:
        #: one-way application-to-application latency over SSL (the paper
        #: measured a ≥640 µs round trip for a null RMI call over SSL).
        self.one_way_latency = one_way_latency
        #: validating one incoming request (access control, digest).
        self.check_cost = check_cost
        #: hashing a capability token (MD5 in the paper).
        self.hash_cost = hash_cost
        #: executing one local operation.
        self.op_cost = op_cost


class Message:
    """One network message."""

    __slots__ = ("kind", "src", "dst", "payload", "data_labels", "msg_id",
                 "seq")

    def __init__(
        self,
        kind: str,
        src: str,
        dst: str,
        payload: Dict[str, Any],
        data_labels: Optional[List] = None,
        msg_id: Optional[int] = None,
        seq: Optional[int] = None,
    ) -> None:
        self.kind = kind
        self.src = src
        self.dst = dst
        self.payload = payload
        #: labels of confidential data carried (for instrumentation).
        self.data_labels = data_labels or []
        #: idempotency key: retransmissions and duplicates share it, so
        #: receivers can suppress re-execution (None on reliable nets).
        self.msg_id = msg_id
        #: per-(src, dst) channel sequence number.
        self.seq = seq

    def __repr__(self) -> str:
        return f"Message({self.kind} {self.src}->{self.dst})"


class DeliveryTimeoutError(RuntimeError):
    """A message exhausted its retry budget: the run fails closed.

    Carries (channel, src, dst, seq, msg-kind) context so a serve-mode
    operator can attribute the failure to a specific exchange.
    """

    def __init__(self, message: Message, attempts: int) -> None:
        super().__init__(
            f"{message.kind} {message.src}->{message.dst} undeliverable "
            f"after {attempts} attempts "
            f"(channel {message.src}->{message.dst}, seq {message.seq}, "
            f"msg #{message.msg_id}, kind {message.kind}); failing closed"
        )
        self.message_kind = message.kind
        self.src = message.src
        self.dst = message.dst
        self.channel = (message.src, message.dst)
        self.seq = message.seq
        self.msg_id = message.msg_id
        self.attempts = attempts


class SecurityAbort(RuntimeError):
    """A detected protocol violation terminated the run fail-closed.

    Raised by the quarantine layer (Section 3.2's threat model: a bad
    host gains nothing, and good hosts stop talking to it) instead of
    letting a rejected request silently stall the executor.  Carries
    the offending host (``None`` when the violation is local, e.g.
    tampered stable storage discovered during recovery), the host that
    detected it, and — when the violation is tied to a specific
    message — the (channel, src, dst, seq, msg-kind) of that exchange.
    """

    def __init__(
        self,
        offender: Optional[str],
        victim: Optional[str],
        why: str,
        message: Optional[Message] = None,
    ) -> None:
        detail = (
            f"security abort ({offender or 'local'} vs {victim or '?'}): "
            f"{why}"
        )
        if message is not None:
            self.channel: Optional[Tuple[str, str]] = (
                message.src, message.dst
            )
            self.src: Optional[str] = message.src
            self.dst: Optional[str] = message.dst
            self.seq: Optional[int] = message.seq
            self.msg_kind: Optional[str] = message.kind
            detail += (
                f" [channel {message.src}->{message.dst}, "
                f"seq {message.seq}, kind {message.kind}]"
            )
        else:
            self.channel = None
            self.src = None
            self.dst = None
            self.seq = None
            self.msg_kind = None
        super().__init__(detail)
        self.offender = offender
        self.victim = victim
        self.why = why


class Transport:
    """Shared transport core: accounting, quarantine, events, queues.

    Subclasses implement actual delivery (:meth:`request`,
    :meth:`one_way`, :meth:`post`, :meth:`register`); everything a
    backend must account identically lives here so the Table 1
    observables cannot depend on which wire carried the messages.
    """

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost = cost_model or CostModel()
        self.clock = 0.0
        #: time spent validating incoming requests (Section 7.3).
        self.check_time = 0.0
        #: time spent hashing tokens (Section 7.3).
        self.hash_time = 0.0
        self.counts: Counter = Counter()
        self.eliminated_roundtrips = 0
        self.message_log: List[Message] = []
        self.audit_log: List[str] = []
        #: (label, host) pairs: data with this label became visible to host.
        self.flow_log: List = []
        #: whether to retain per-message/per-flow event objects.  The
        #: logs exist for collectors — the security-assurance checks and
        #: the tracer — not for the run's observables (counts, clock, ICS
        #: depths), so a throughput driver with no collector attached
        #: turns this off and skips building the trace events entirely.
        #: Attaching a :class:`~repro.runtime.trace.Tracer` switches it
        #: back on.
        self.record_logs = True
        #: fault injector; ``None`` on backends (or runs) without one.
        #: Hosts consult this to decide whether to materialize durable
        #: stores, so every Transport exposes it.
        self.faults = None
        #: (kind, src, dst, detail) tuples for drop/retry/crash/restart/...
        self.fault_events: List[Tuple[str, Optional[str], Optional[str], str]] = []
        self.fault_counts: Counter = Counter()
        self._listeners: List[Callable[..., None]] = []
        self._msg_ids = itertools.count(1)
        self._seq: Counter = Counter()
        self._queue: Deque[Message] = deque()
        #: quarantine layer: off by default (rejected requests are
        #: silently ignored, the paper's Figure 6 behaviour).  When on,
        #: a rejected *remote* request raises :class:`SecurityAbort` and
        #: blacklists the offender.
        self.quarantine_enabled = False
        self.quarantined: set = set()

    # -- delivery contract (backend-specific) ----------------------------------

    def register(
        self,
        host: str,
        handler: Callable[[Message], Any],
        on_crash: Optional[Callable[[], None]] = None,
        on_restart: Optional[Callable[[], None]] = None,
    ) -> None:
        raise NotImplementedError

    def request(self, message: Message) -> Any:
        """A request/reply exchange (getField, setField, forward, sync).

        Counts two messages (the paper's "×2" rows), except local calls,
        which never touch the network.
        """
        raise NotImplementedError

    def one_way(self, message: Message, messages: int = 1) -> Any:
        """A one-message exchange (asynchronous forward at opt level 2)."""
        raise NotImplementedError

    def post(self, message: Message) -> None:
        """Queue a control transfer (rgoto/lgoto) for the executor loop."""
        raise NotImplementedError

    # -- control queue ---------------------------------------------------------

    def pop_control(self) -> Optional[Message]:
        return self._queue.popleft() if self._queue else None

    @property
    def pending_control(self) -> int:
        return len(self._queue)

    # -- reset-in-place --------------------------------------------------------

    def reset_run_state(self) -> None:
        """Clear every piece of shared per-run state: clock, counts,
        logs, channel sequence numbers, the idempotency-key counter, the
        control queue, fault events, event listeners, the quarantine
        set, and the log-recording flag (a session recycled out of a
        lean-logging run must come back with recording on, the
        freshly-constructed default).  Also uninstalls any
        instance-level ``_account`` override (the tracer patches one
        in), so a previously traced session stops tracing when recycled.
        """
        self.clock = 0.0
        self.check_time = 0.0
        self.hash_time = 0.0
        self.counts.clear()
        self.eliminated_roundtrips = 0
        self.message_log.clear()
        self.audit_log.clear()
        self.flow_log.clear()
        self.record_logs = True
        self.fault_events.clear()
        self.fault_counts.clear()
        self._listeners.clear()
        self._msg_ids = itertools.count(1)
        self._seq.clear()
        self._queue.clear()
        self.quarantine_enabled = False
        self.quarantined.clear()
        self.__dict__.pop("_account", None)

    # -- accounting helpers ------------------------------------------------------

    def _account(self, message: Message, messages: int) -> None:
        self.counts[message.kind] += 1
        self.counts["messages"] += messages
        if message.src != message.dst:
            self.clock += messages * self.cost.one_way_latency
        if self.record_logs:
            self.message_log.append(message)

    def charge_check(self) -> None:
        self.clock += self.cost.check_cost
        self.check_time += self.cost.check_cost

    def charge_hash(self) -> None:
        self.clock += self.cost.hash_cost
        self.hash_time += self.cost.hash_cost

    def charge_ops(self, count: int) -> None:
        self.clock += count * self.cost.op_cost

    def note_eliminated(self, count: int) -> None:
        self.eliminated_roundtrips += count

    def audit(self, host: str, why: str) -> None:
        self.audit_log.append(f"{host}: {why}")

    def flow(self, label, host: str) -> None:
        """Record that data labeled ``label`` became visible to ``host``."""
        if self.record_logs:
            self.flow_log.append((label, host))

    # -- quarantine --------------------------------------------------------------

    def quarantine(
        self,
        offender: str,
        victim: str,
        why: str,
        message: Optional[Message] = None,
    ) -> None:
        """Blacklist ``offender`` and unwind the run with
        :class:`SecurityAbort` (only called when ``quarantine_enabled``).
        ``message`` (when the violation is tied to one) stamps the
        abort with its channel/seq/kind context."""
        self.audit(victim, f"quarantining {offender}: {why}")
        self._emit("quarantine", offender, victim, why)
        self.quarantined.add(offender)
        raise SecurityAbort(offender, victim, why, message=message)

    def _check_quarantine(self, message: Message) -> None:
        if self.quarantine_enabled and message.src in self.quarantined:
            raise SecurityAbort(
                message.src,
                message.dst,
                f"{message.kind} refused: {message.src} is quarantined",
                message=message,
            )

    # -- fault events ------------------------------------------------------------

    def on_event(self, callback: Callable[..., None]) -> None:
        """Subscribe to fault events: callback(kind, src, dst, detail)."""
        self._listeners.append(callback)

    def _emit(
        self, kind: str, src: Optional[str], dst: Optional[str], detail: str
    ) -> None:
        self.fault_events.append((kind, src, dst, detail))
        self.fault_counts[kind] += 1
        for callback in self._listeners:
            callback(kind, src, dst, detail)

    def _stamp(self, message: Message) -> None:
        """Assign the idempotency key and channel sequence number."""
        if message.msg_id is None:
            message.msg_id = next(self._msg_ids)
            channel = (message.src, message.dst)
            self._seq[channel] += 1
            message.seq = self._seq[channel]

    # -- reporting ------------------------------------------------------------------

    def table_counts(self) -> Dict[str, int]:
        """The Table 1 accounting: round-trip kinds reported singly
        (each costs two messages), control kinds as message counts."""
        return {
            "forward": self.counts.get("forward", 0),
            "getField": self.counts.get("getField", 0),
            "setField": self.counts.get("setField", 0),
            "sync": self.counts.get("sync", 0),
            "lgoto": self.counts.get("lgoto", 0),
            "rgoto": self.counts.get("rgoto", 0),
            "total_messages": self.counts.get("messages", 0),
            "eliminated": self.eliminated_roundtrips,
        }
