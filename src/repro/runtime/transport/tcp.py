"""A real TCP transport: each TrustedHost as its own process.

The simulated :class:`~repro.runtime.network.SimNetwork` delivers a
message by calling the destination host's handler in the same address
space.  This backend puts the identical protocol on an actual wire:

* **Framing.**  Every frame is a 4-byte big-endian length prefix
  followed by that many bytes of UTF-8 JSON.  Message payloads —
  tokens, frame ids, object/array references, labels, the ``REJECTED``
  sentinel — ride through the storage codec
  (:mod:`repro.runtime.storage.codec`), the same deterministic
  tagged-JSON encoding the durable tier trusts, so the wire format is
  untrusted-input handling by construction.

* **Envelope.**  Frames carry the existing reliable-delivery envelope:
  the per-message idempotency key (``msg_id``), the per-channel
  sequence number (``seq``), and — for control transfers — a separate
  per-channel control sequence (``cseq``).  Requests are retransmitted
  on an ack/retry timer (:class:`WireRetryPolicy`, real seconds this
  time); receivers suppress duplicates (an in-flight or already-served
  ``msg_id`` is never re-executed) and hold back out-of-order control
  messages until the gap fills, so rgoto/lgoto arrive in program
  order.  A message that exhausts its retry budget raises
  :class:`~repro.runtime.transport.base.DeliveryTimeoutError` — fail
  closed, never answer wrong — with full (channel, seq, kind) context.

* **Accounting.**  :class:`HostEndpoint` inherits the Table 1
  accounting from :class:`~repro.runtime.transport.base.Transport`.
  Each process accounts exactly what the simulation would have charged
  on its side of the wire: the sender charges the message count and
  latency (``_account``), the receiver charges validation and token
  hashing (``charge_check``/``charge_hash``).  The split program has a
  single thread of control, every charge is an integer number of
  simulated microseconds, and floats that are integer multiples of
  1e-6 sum associatively at this magnitude — so summing the per-host
  subtotals reproduces the global simulated clock of the oracle run
  *bit-identically* (see :meth:`TcpRunResult.observables`).

* **Processes.**  :func:`run_split_over_tcp` pre-binds one listener
  socket per host (so the port map is known without any discovery
  protocol), forks one child per host — the child inherits the shared
  :class:`~repro.runtime.session.RuntimeImage`, key registry, and its
  listener through fork, nothing is pickled — and coordinates the run
  over the same framed protocol (``start`` / ``halt`` / ``report`` /
  ``shutdown``).  Children partition the global object/frame id
  counters into disjoint strides so ids minted on different hosts can
  never collide (absolute ids carry no meaning; collision-freedom is
  all that matters, exactly as in rehydration).

Each endpoint is single-threaded: while a host waits for a reply it
keeps pumping its socket set and serves incoming requests, which is
what makes nested synchronization chains (A calls B calls A) work
without threads — the same re-entrancy the in-process simulation gets
from ordinary function calls.
"""

from __future__ import annotations

import itertools
import json
import os
import selectors
import signal
import socket
import struct
import time
import traceback
from collections import Counter, deque
from typing import Any, Dict, List, Optional, Tuple

from ..storage.codec import StorageCodecError, dumps, loads
from .base import (
    CostModel,
    DeliveryTimeoutError,
    Message,
    SecurityAbort,
    Transport,
)

__all__ = [
    "HostEndpoint",
    "TcpRunResult",
    "WirePolicy",
    "WireRetryPolicy",
    "recv_frame",
    "run_split_over_tcp",
    "send_frame",
]

_LEN = struct.Struct(">I")
#: refuse frames over 64 MiB — a length prefix from a confused or
#: malicious peer must not allocate unbounded memory.
MAX_FRAME = 64 * 1024 * 1024

#: the id-counter stride handed to each forked host, far above anything
#: a single run allocates.
_ID_STRIDE = 10 ** 12

#: the coordinator's name in the address map (never a program host).
COORD = "__coord__"


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def send_frame(sock: socket.socket, frame: Dict[str, Any]) -> None:
    """Write one length-prefixed JSON frame."""
    blob = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    sock.sendall(_LEN.pack(len(blob)) + blob)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(n)
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Dict[str, Any]:
    """Read one length-prefixed JSON frame (blocking socket)."""
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if length > MAX_FRAME:
        raise ConnectionError(f"frame of {length} bytes exceeds the cap")
    frame = json.loads(_recv_exact(sock, length).decode("utf-8"))
    if not isinstance(frame, dict):
        raise ConnectionError("frame is not a JSON object")
    return frame


class _Conn:
    """One established connection plus its receive buffer."""

    __slots__ = ("sock", "buf", "peer")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.buf = b""
        self.peer: Optional[str] = None

    def frames(self, data: bytes) -> List[Dict[str, Any]]:
        """Feed received bytes; return every complete frame."""
        self.buf += data
        out = []
        while len(self.buf) >= _LEN.size:
            (length,) = _LEN.unpack(self.buf[: _LEN.size])
            if length > MAX_FRAME:
                raise ConnectionError(
                    f"frame of {length} bytes exceeds the cap"
                )
            if len(self.buf) < _LEN.size + length:
                break
            blob = self.buf[_LEN.size : _LEN.size + length]
            self.buf = self.buf[_LEN.size + length :]
            frame = json.loads(blob.decode("utf-8"))
            if not isinstance(frame, dict):
                raise ConnectionError("frame is not a JSON object")
            out.append(frame)
        return out


def _enc_message(message: Message) -> Dict[str, Any]:
    return {
        "kind": message.kind,
        "src": message.src,
        "dst": message.dst,
        "payload": dumps(message.payload),
        "labels": dumps(message.data_labels),
        "msg_id": message.msg_id,
        "seq": message.seq,
    }


def _dec_message(data: Dict[str, Any]) -> Message:
    return Message(
        data["kind"],
        data["src"],
        data["dst"],
        loads(data["payload"]),
        data_labels=loads(data["labels"]),
        msg_id=data["msg_id"],
        seq=data["seq"],
    )


# ---------------------------------------------------------------------------
# retry and fault hooks
# ---------------------------------------------------------------------------


class WireRetryPolicy:
    """Real-time ack/retry budget for the TCP wire.

    The shape mirrors :class:`~repro.runtime.faults.RetryPolicy`
    (exponential backoff, bounded retries, an overall deadline), but
    these are wall-clock seconds burned waiting on an actual socket,
    not simulated charges.
    """

    def __init__(
        self,
        base_timeout: float = 1.0,
        backoff: float = 2.0,
        max_timeout: float = 8.0,
        max_retries: int = 5,
        deadline: float = 30.0,
    ) -> None:
        self.base_timeout = base_timeout
        self.backoff = backoff
        self.max_timeout = max_timeout
        self.max_retries = max_retries
        self.deadline = deadline

    def timeout(self, attempt: int) -> float:
        return min(self.base_timeout * (self.backoff ** attempt),
                   self.max_timeout)

    def past_deadline(self, waited: float) -> bool:
        return waited >= self.deadline


class WirePolicy:
    """Outbound frame hook for fault injection in the conformance suite.

    ``on_send`` receives each frame about to be written and returns the
    list of frames to actually write: ``[frame]`` passes it through,
    ``[]`` drops it (the sender's retransmission timer takes over),
    ``[frame, frame]`` duplicates it, and returning a held-back earlier
    frame after a later one reorders the wire.  The default passes
    everything through — production endpoints run with no policy at
    all, this exists so tests can script loss on a real socket.
    """

    def on_send(self, frame: Dict[str, Any]) -> List[Dict[str, Any]]:
        return [frame]


# ---------------------------------------------------------------------------
# the endpoint
# ---------------------------------------------------------------------------


class HostEndpoint(Transport):
    """One host's transport over real sockets.

    Owns the host's pre-bound listener, dials peers lazily from
    ``addr_map``, and pumps all of its sockets from the calling thread
    — delivery methods (:meth:`request`, :meth:`one_way`, :meth:`post`)
    serve incoming frames while they wait for their own reply, so
    nested synchronization chains cannot deadlock.
    """

    def __init__(
        self,
        name: str,
        listener: socket.socket,
        addr_map: Dict[str, Tuple[str, int]],
        cost_model: Optional[CostModel] = None,
        retry: Optional[WireRetryPolicy] = None,
        wire: Optional[WirePolicy] = None,
        msg_id_floor: int = 1,
    ) -> None:
        super().__init__(cost_model)
        self.name = name
        # Idempotency keys must be globally unique across the cluster
        # (the simulation gets this for free from its single shared
        # counter): each endpoint mints from its own disjoint stride so
        # two hosts can never present the same key to one receiver.
        self._msg_ids = itertools.count(msg_id_floor)
        self.addr_map = dict(addr_map)
        self.retry = retry or WireRetryPolicy()
        #: test-only outbound fault hook (None in production).
        self.wire = wire
        self._handler = None
        self._listener = listener
        listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ, "listen")
        self._conns: Dict[socket.socket, _Conn] = {}
        self._out: Dict[str, _Conn] = {}
        #: replies/acks/errors keyed by msg_id, filled by the pump.
        self._replies: Dict[int, Dict[str, Any]] = {}
        #: request idempotency at the transport layer: already-served
        #: msg_id -> reply frame (retransmissions re-send the cached
        #: reply) and the set of msg_ids whose first execution is still
        #: on the stack (retransmissions of those are ignored — the
        #: reply goes out when the original finishes).  The TrustedHost
        #: keeps its own ``_seen_requests`` table on top; this layer
        #: exists so *no* handler is ever re-entered for a duplicate.
        self._served: Dict[int, Dict[str, Any]] = {}
        self._serving: set = set()
        #: control-transfer ordering: outbound per-channel control
        #: sequence, inbound next-expected per source, and the holdback
        #: buffer for out-of-order arrivals.
        self._ctrl_out: Counter = Counter()
        self._ctrl_in: Dict[str, int] = {}
        self._holdback: Dict[str, Dict[int, Message]] = {}
        #: coordination frames (start/report/shutdown/...) for a serve
        #: loop to consume: (frame, conn) pairs.
        self.inbox: deque = deque()
        self.closed = False

    # -- registration ---------------------------------------------------------

    def register(self, host, handler, on_crash=None, on_restart=None) -> None:
        if host != self.name:
            raise ValueError(
                f"endpoint {self.name!r} can only host {self.name!r}, "
                f"not {host!r}"
            )
        self._handler = handler

    # -- socket plumbing ------------------------------------------------------

    def _track(self, sock: socket.socket) -> _Conn:
        conn = _Conn(sock)
        self._conns[sock] = conn
        self._selector.register(sock, selectors.EVENT_READ, conn)
        return conn

    def _drop_conn(self, conn: _Conn) -> None:
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        self._conns.pop(conn.sock, None)
        for peer, out in list(self._out.items()):
            if out is conn:
                del self._out[peer]
        try:
            conn.sock.close()
        except OSError:
            pass

    def _dial(self, peer: str) -> _Conn:
        conn = self._out.get(peer)
        if conn is not None:
            return conn
        addr = self.addr_map.get(peer)
        if addr is None:
            raise KeyError(f"unknown host {peer!r}")
        sock = socket.create_connection(tuple(addr), timeout=10.0)
        sock.settimeout(None)
        conn = self._track(sock)
        conn.peer = peer
        self._out[peer] = conn
        send_frame(sock, {"t": "hello", "from": self.name})
        return conn

    def _write(self, conn: _Conn, frame: Dict[str, Any]) -> None:
        frames = [frame] if self.wire is None else self.wire.on_send(frame)
        for out in frames:
            send_frame(conn.sock, out)

    def pump(self, timeout: float) -> None:
        """Process socket events for up to ``timeout`` seconds (one
        selector round; returns after the first batch of events)."""
        if self.closed:
            return
        events = self._selector.select(timeout)
        for key, _mask in events:
            if key.data == "listen":
                try:
                    sock, _ = self._listener.accept()
                except OSError:
                    continue
                sock.setblocking(True)
                self._track(sock)
                continue
            conn = key.data
            try:
                data = conn.sock.recv(65536)
            except OSError:
                self._drop_conn(conn)
                continue
            if not data:
                self._drop_conn(conn)
                continue
            try:
                frames = conn.frames(data)
            except (ConnectionError, ValueError) as error:
                self.audit(self.name, f"undecodable frame stream: {error}")
                self._drop_conn(conn)
                continue
            for frame in frames:
                self._dispatch(frame, conn)

    # -- inbound frames -------------------------------------------------------

    def _dispatch(self, frame: Dict[str, Any], conn: _Conn) -> None:
        kind = frame.get("t")
        if kind == "hello":
            conn.peer = frame.get("from")
        elif kind == "req":
            self._serve_request(frame, conn)
        elif kind in ("rep", "ack", "err"):
            self._replies[frame["id"]] = frame
        elif kind == "post":
            self._serve_post(frame, conn)
        else:
            self.inbox.append((frame, conn))

    def _serve_request(self, frame: Dict[str, Any], conn: _Conn) -> None:
        msg_id = frame["m"]["msg_id"]
        dedup_key = (frame["m"]["src"], msg_id)
        cached = self._served.get(dedup_key)
        if cached is not None:
            self._write(conn, cached)
            return
        if dedup_key in self._serving:
            # Retransmission of a request whose first execution is
            # still running: the reply goes out when it finishes.
            return
        try:
            message = _dec_message(frame["m"])
        except (StorageCodecError, KeyError, TypeError) as error:
            self.audit(self.name, f"undecodable request: {error}")
            self._write(conn, {
                "t": "err", "id": msg_id, "code": "bad-request",
                "detail": f"undecodable request: {error}",
            })
            return
        self._serving.add(dedup_key)
        try:
            try:
                result = self._handler(message)
            except SecurityAbort as abort:
                reply = {
                    "t": "err", "id": msg_id, "code": "quarantine",
                    "offender": abort.offender, "victim": abort.victim,
                    "why": abort.why, "detail": str(abort),
                }
            else:
                try:
                    reply = {"t": "rep", "id": msg_id, "r": dumps(result)}
                except StorageCodecError as error:
                    reply = {
                        "t": "err", "id": msg_id, "code": "internal",
                        "detail": f"unencodable reply: {error}",
                    }
        finally:
            self._serving.discard(dedup_key)
        self._served[dedup_key] = reply
        self._write(conn, reply)

    def _serve_post(self, frame: Dict[str, Any], conn: _Conn) -> None:
        msg_id = frame["m"]["msg_id"]
        # Always ack — even duplicates and holdbacks — so the sender's
        # retransmission timer stops; ordering is our problem now.
        self._write(conn, {"t": "ack", "id": msg_id})
        try:
            message = _dec_message(frame["m"])
        except (StorageCodecError, KeyError, TypeError) as error:
            self.audit(self.name, f"undecodable control message: {error}")
            return
        src, cseq = message.src, frame["cseq"]
        expected = self._ctrl_in.get(src, 1)
        if cseq < expected:
            return  # duplicate of an already-delivered control message
        hold = self._holdback.setdefault(src, {})
        hold[cseq] = message  # a duplicate at the same cseq is harmless
        while expected in hold:
            self._queue.append(hold.pop(expected))
            expected += 1
        self._ctrl_in[src] = expected

    # -- outbound exchanges ---------------------------------------------------

    def request(self, message: Message) -> Any:
        if message.dst == self.name:
            if message.src == message.dst:
                return self._handler(message)
            raise KeyError(
                f"{self.name} cannot originate remote requests to itself"
            )
        if message.src == message.dst:
            raise KeyError(f"unknown host {message.dst!r}")
        self._check_quarantine(message)
        self._stamp(message)
        self._account(message, messages=2)
        return self._exchange(message, {"t": "req", "m": _enc_message(message)})

    def one_way(self, message: Message, messages: int = 1) -> Any:
        if message.dst == self.name:
            return self._handler(message)
        self._check_quarantine(message)
        self._stamp(message)
        self._account(message, messages=messages)
        return self._exchange(message, {"t": "req", "m": _enc_message(message)})

    def post(self, message: Message) -> None:
        if message.src == message.dst:
            self._queue.append(message)
            return
        self._check_quarantine(message)
        self._stamp(message)
        self._account(message, messages=1)
        channel = (message.src, message.dst)
        self._ctrl_out[channel] += 1
        frame = {
            "t": "post",
            "m": _enc_message(message),
            "cseq": self._ctrl_out[channel],
        }
        self._exchange(message, frame)

    def _exchange(self, message: Message, frame: Dict[str, Any]) -> Any:
        """Send ``frame`` and pump until its reply/ack arrives,
        retransmitting on the retry schedule; serves incoming frames
        while waiting (nested chains re-enter here recursively)."""
        msg_id = message.msg_id
        conn = self._dial(message.dst)
        self._write(conn, frame)
        attempt = 0
        waited = 0.0
        while True:
            timer = self.retry.timeout(attempt)
            deadline = time.monotonic() + timer
            while msg_id not in self._replies:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self.pump(remaining)
            reply = self._replies.pop(msg_id, None)
            if reply is not None:
                return self._consume_reply(message, reply)
            waited += timer
            attempt += 1
            if attempt > self.retry.max_retries or self.retry.past_deadline(
                waited
            ):
                self._emit(
                    "timeout", message.src, message.dst,
                    f"{message.kind} #{msg_id} gave up after "
                    f"{attempt} attempts ({waited:.3f}s on the wire)",
                )
                raise DeliveryTimeoutError(message, attempt)
            self._emit(
                "retry", message.src, message.dst,
                f"{message.kind} #{msg_id} attempt {attempt + 1}",
            )
            conn = self._dial(message.dst)
            self._write(conn, frame)

    def _consume_reply(self, message: Message, reply: Dict[str, Any]) -> Any:
        if reply["t"] == "ack":
            return None
        if reply["t"] == "err":
            code = reply.get("code")
            if code == "quarantine":
                raise SecurityAbort(
                    reply.get("offender"), reply.get("victim"),
                    reply.get("why", reply.get("detail", "remote abort")),
                    message=message,
                )
            raise RuntimeError(
                f"remote error from {message.dst}: "
                f"{reply.get('code')}: {reply.get('detail')}"
            )
        return loads(reply["r"])

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        for conn in list(self._conns.values()):
            self._drop_conn(conn)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._selector.close()


# ---------------------------------------------------------------------------
# whole-program runs: one forked process per host
# ---------------------------------------------------------------------------


class TcpRunResult:
    """The merged observables of a distributed run over TCP.

    Mirrors the surface of
    :class:`~repro.runtime.session.ExecutionResult` /
    :meth:`~repro.runtime.session.Session.observables` so a TCP run can
    be compared field-for-field against the simulated oracle.
    """

    def __init__(
        self, reports: Dict[str, Dict[str, Any]], main_frame
    ) -> None:
        self.reports = reports
        self.main_frame = main_frame
        merged: Counter = Counter()
        for report in reports.values():
            merged.update(report["counts"])
        self._merged = merged
        self.eliminated = sum(r["eliminated"] for r in reports.values())
        self.elapsed = sum(r["clock"] for r in reports.values())
        self.check_time = sum(r["check_time"] for r in reports.values())
        self.hash_time = sum(r["hash_time"] for r in reports.values())
        self.ics_depths = {
            name: report["ics_depth"]
            for name, report in sorted(reports.items())
        }
        self.audits: List[str] = []
        for name in sorted(reports):
            self.audits.extend(reports[name]["audits"])
        self._fields = {
            name: loads(report["fields"])
            for name, report in reports.items()
        }
        self._frames = {
            name: loads(report["frames"])
            for name, report in reports.items()
        }

    @property
    def counts(self) -> Dict[str, int]:
        merged = self._merged
        return {
            "forward": merged.get("forward", 0),
            "getField": merged.get("getField", 0),
            "setField": merged.get("setField", 0),
            "sync": merged.get("sync", 0),
            "lgoto": merged.get("lgoto", 0),
            "rgoto": merged.get("rgoto", 0),
            "total_messages": merged.get("messages", 0),
            "eliminated": self.eliminated,
        }

    def observables(self) -> Dict[str, Any]:
        """Bit-comparable to :meth:`Session.observables`: same keys,
        same rounding, same per-host ICS depths."""
        return {
            "messages": self.counts,
            "simulated_seconds": round(self.elapsed, 6),
            "ics_depths": dict(self.ics_depths),
        }

    def field_value(self, cls: str, field: str, oid=None, default=None):
        key = (cls, field, oid)
        for fields in self._fields.values():
            if key in fields:
                return fields[key]
        return default

    def var_value(self, frame, var: str, default=None):
        for frames in self._frames.values():
            copy = frames.get(frame)
            if copy is not None and var in copy:
                return copy[var]
        return default

    def main_var(self, var: str, default=None):
        return self.var_value(self.main_frame, var, default)


def _child_serve(endpoint: "HostEndpoint", host, image) -> None:
    """The forked host's event loop: pump frames, execute control
    transfers in order, answer coordination frames."""
    from ..host import ExecutionState, HaltSignal
    from ..values import FrameID

    main_frame = None

    def tell_coord(frame: Dict[str, Any]) -> None:
        conn = endpoint._dial(COORD)
        endpoint._write(conn, frame)

    def run_failed(error: BaseException) -> None:
        code = (
            "timeout" if isinstance(error, DeliveryTimeoutError)
            else "quarantine" if isinstance(error, SecurityAbort)
            else "internal"
        )
        tell_coord({
            "t": "failed", "host": endpoint.name, "code": code,
            "detail": str(error),
        })

    while True:
        endpoint.pump(0.1)
        # Execute pending control transfers, strictly in cseq order —
        # the distributed analogue of Session.step().
        while True:
            message = endpoint.pop_control()
            if message is None:
                break
            try:
                host.handle(message)
            except HaltSignal:
                tell_coord({"t": "halt", "host": endpoint.name})
            except (SecurityAbort, DeliveryTimeoutError) as error:
                run_failed(error)
        while endpoint.inbox:
            frame, conn = endpoint.inbox.popleft()
            kind = frame.get("t")
            if kind == "start":
                # The distributed analogue of Session.start(): mint the
                # root capability and run the main chain.
                try:
                    main_frame = FrameID(image.main_method_key)
                    root = host.factory.mint(
                        main_frame, host.split.main_entry
                    )
                    host.adopt_root(root)
                    state = ExecutionState(
                        host.split.main_entry, main_frame, root
                    )
                    try:
                        host.run_chain(state)
                    except HaltSignal:
                        tell_coord({"t": "halt", "host": endpoint.name})
                except (SecurityAbort, DeliveryTimeoutError) as error:
                    run_failed(error)
            elif kind == "report":
                endpoint._write(conn, {
                    "t": "obs",
                    "host": endpoint.name,
                    "counts": dict(endpoint.counts),
                    "clock": endpoint.clock,
                    "check_time": endpoint.check_time,
                    "hash_time": endpoint.hash_time,
                    "eliminated": endpoint.eliminated_roundtrips,
                    "ics_depth": host.stack.depth,
                    "audits": list(endpoint.audit_log),
                    "fields": dumps(host.field_store),
                    "frames": dumps(host.frames),
                    "main_frame": dumps(main_frame),
                })
            elif kind == "shutdown":
                return


def _child_main(
    index: int,
    name: str,
    listeners: Dict[str, socket.socket],
    addr_map: Dict[str, Tuple[str, int]],
    image,
    opt_level: int,
    cost_model: Optional[CostModel],
) -> None:
    from .. import values as values_mod
    from ..host import TrustedHost

    for other, sock in listeners.items():
        if other != name:
            sock.close()
    # Partition the id spaces: ids minted on different hosts must never
    # collide when they meet inside a payload (absolute values carry no
    # meaning — this is the forked twin of codec.advance_id_floors).
    floor = 1 + (index + 1) * _ID_STRIDE
    values_mod._object_ids = itertools.count(floor)
    values_mod._frame_ids = itertools.count(floor)
    endpoint = HostEndpoint(
        name, listeners[name], addr_map, cost_model=cost_model,
        msg_id_floor=floor,
    )
    host = TrustedHost(
        name,
        image.split,
        endpoint,
        image.registry,
        opt_level=opt_level,
        image=image.host_images[name],
    )
    try:
        _child_serve(endpoint, host, image)
    finally:
        endpoint.close()


def _reap(pids: List[int], deadline: float) -> None:
    """Wait for the children, escalating to SIGKILL at the deadline."""
    pending = list(pids)
    while pending:
        for pid in list(pending):
            try:
                done, _status = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                pending.remove(pid)
                continue
            if done:
                pending.remove(pid)
        if not pending:
            return
        if time.monotonic() > deadline:
            for pid in pending:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
            for pid in pending:
                try:
                    os.waitpid(pid, 0)
                except ChildProcessError:
                    pass
            return
        time.sleep(0.02)


def run_split_over_tcp(
    split,
    registry=None,
    opt_level: int = 1,
    cost_model: Optional[CostModel] = None,
    timeout: float = 120.0,
) -> TcpRunResult:
    """Execute a split program with one forked process per host, all
    messages on real 127.0.0.1 sockets; returns the merged
    :class:`TcpRunResult` (observables bit-comparable to the simulated
    oracle's).  Raises the distributed run's own failure —
    :class:`DeliveryTimeoutError`, :class:`SecurityAbort` — or
    :class:`RuntimeError` if the cluster wedges past ``timeout``."""
    from ..session import RuntimeImage

    image = RuntimeImage.for_split(split, registry)
    names = [descriptor.name for descriptor in split.config.hosts]
    listeners: Dict[str, socket.socket] = {}
    addr_map: Dict[str, Tuple[str, int]] = {}
    for name in names + [COORD]:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        sock.listen(64)
        listeners[name] = sock
        addr_map[name] = sock.getsockname()

    pids: List[int] = []
    try:
        for index, name in enumerate(names):
            pid = os.fork()
            if pid == 0:
                status = 0
                try:
                    listeners[COORD].close()
                    _child_main(
                        index, name, listeners, addr_map, image,
                        opt_level, cost_model,
                    )
                except BaseException:
                    traceback.print_exc()
                    status = 70
                finally:
                    os._exit(status)
            pids.append(pid)
        for name in names:
            listeners[name].close()

        coord = listeners[COORD]
        coord.settimeout(timeout)
        main_conn = socket.create_connection(
            addr_map[split.main_host], timeout=timeout
        )
        main_conn.settimeout(timeout)
        send_frame(main_conn, {"t": "start"})

        # Wait for whichever host ends the program to dial in.
        csock, _ = coord.accept()
        csock.settimeout(timeout)
        outcome = recv_frame(csock)
        while outcome.get("t") == "hello":
            outcome = recv_frame(csock)
        if outcome.get("t") == "failed":
            code = outcome.get("code")
            detail = outcome.get("detail", "")
            if code == "quarantine":
                raise SecurityAbort(
                    None, outcome.get("host"), detail or "remote abort"
                )
            raise RuntimeError(
                f"distributed run failed on {outcome.get('host')}: "
                f"{code}: {detail}"
            )
        if outcome.get("t") != "halt":
            raise RuntimeError(f"unexpected coordination frame {outcome!r}")

        reports: Dict[str, Dict[str, Any]] = {}
        main_frame = None
        for name in names:
            conn = socket.create_connection(addr_map[name], timeout=timeout)
            conn.settimeout(timeout)
            send_frame(conn, {"t": "report"})
            obs = recv_frame(conn)
            if obs.get("t") != "obs":
                raise RuntimeError(
                    f"unexpected report frame from {name}: {obs!r}"
                )
            reports[name] = obs
            if name == split.main_host:
                main_frame = loads(obs["main_frame"])
            send_frame(conn, {"t": "shutdown"})
            conn.close()
        main_conn.close()
        csock.close()
        return TcpRunResult(reports, main_frame)
    finally:
        _reap(pids, time.monotonic() + 10.0)
        for sock in listeners.values():
            try:
                sock.close()
            except OSError:
                pass
