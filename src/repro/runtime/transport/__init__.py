"""Pluggable message transports for the partitioned-program runtime.

The runtime's hosts talk to each other through a :class:`Transport` —
the contract covering message delivery (``request`` / ``one_way`` /
``post``), host registration (handlers plus crash/restart hooks), the
Table 1 accounting (message counts, the simulated clock, check/hash
charges, flow and audit logs), and reset-in-place recycling.

Two backends implement it:

* :class:`~repro.runtime.network.SimNetwork` — the default in-process
  simulation (Section 3.1's reliable pairwise channels, plus the PR1
  fault-injection and reliable-delivery layer).  Every Table 1
  invariant is pinned against this backend.
* :class:`~repro.runtime.transport.tcp.HostEndpoint` — a real TCP
  backend: each :class:`~repro.runtime.host.TrustedHost` runs in its
  own process and speaks length-prefixed framed messages carrying the
  same seq / msg-id / ack-retry envelope over 127.0.0.1 sockets
  (:func:`~repro.runtime.transport.tcp.run_split_over_tcp` drives a
  whole split program across forked host processes).

The simulated backend stays the default everywhere; the TCP backend is
opt-in (``repro serve``, the transport conformance suite, and the
serve-smoke CI job).
"""

from .base import (
    CONTROL_KINDS,
    ROUNDTRIP_KINDS,
    CostModel,
    DeliveryTimeoutError,
    Message,
    SecurityAbort,
    Transport,
)

__all__ = [
    "CONTROL_KINDS",
    "ROUNDTRIP_KINDS",
    "CostModel",
    "DeliveryTimeoutError",
    "Message",
    "SecurityAbort",
    "Transport",
]
