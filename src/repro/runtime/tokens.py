"""Capability tokens (Section 5.5).

A token is the tuple ``{h, f, e}_{k_h}``: host, frame, entry point,
authenticated with the issuing host's key and made unique by a nonce.
The paper hashes with MD5 and a private key; we use HMAC-SHA256 from
the same key registry that signs trust declarations — the property that
matters is that bad hosts can neither forge nor replay tokens.
"""

from __future__ import annotations

import os
from typing import Optional

from ..trust import KeyRegistry
from .values import FrameID


class Token:
    """A one-shot capability for an entry point on a host."""

    __slots__ = ("host", "frame", "entry", "nonce", "mac")

    def __init__(
        self,
        host: str,
        frame: FrameID,
        entry: str,
        nonce: bytes,
        mac: bytes,
    ) -> None:
        self.host = host
        self.frame = frame
        self.entry = entry
        self.nonce = nonce
        self.mac = mac

    def message(self) -> bytes:
        return (
            f"token|{self.host}|{self.frame.fid}|{self.entry}|"
            f"{self.nonce.hex()}".encode()
        )

    def __repr__(self) -> str:
        return f"Token({self.entry}, frame={self.frame.fid})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Token):
            return (
                self.host == other.host
                and self.frame == other.frame
                and self.entry == other.entry
                and self.nonce == other.nonce
                and self.mac == other.mac
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.host, self.frame, self.entry, self.nonce))


class TokenFactory:
    """Mints and verifies tokens for one host.

    Nonces come from ``os.urandom`` by default; pass a seeded
    ``random.Random`` as ``rng`` for fully deterministic runs (used by
    the differential fault-injection harness, where bit-reproducible
    executions make failures replayable from a seed).
    """

    def __init__(self, host: str, registry: KeyRegistry, rng=None) -> None:
        self.host = host
        self._registry = registry
        self._rng = rng
        registry.register(f"host:{host}")
        #: number of MAC computations performed (for the Section 7.3
        #: hashing-overhead accounting).
        self.hash_count = 0

    def reset(self, rng=None) -> None:
        """Back to a freshly constructed factory for session recycling.

        The host's signing key stays (key material is a shared-image
        artifact, derived once per registry); only the nonce source and
        the hash counter are per-run state.
        """
        self._rng = rng
        self.hash_count = 0

    def _nonce(self) -> bytes:
        if self._rng is not None:
            return self._rng.getrandbits(64).to_bytes(8, "big")
        return os.urandom(8)

    def mint(self, frame: FrameID, entry: str) -> Token:
        nonce = self._nonce()
        token = Token(self.host, frame, entry, nonce, b"")
        token.mac = self._registry.sign(f"host:{self.host}", token.message())
        self.hash_count += 1
        return token

    def verify(self, token: Token) -> bool:
        if token.host != self.host:
            return False
        self.hash_count += 1
        return self._registry.verify(
            f"host:{self.host}", token.message(), token.mac
        )

    # -- sealing (crash-recovery subsystem) ----------------------------------
    #
    # Checkpoints and recovery announcements reuse the token HMAC
    # machinery: a seal is an HMAC under the host's own key over a
    # purpose-tagged payload, so a bad host can neither forge another
    # host's checkpoint nor fabricate its recovery announcements.

    def seal(self, purpose: str, payload: bytes) -> bytes:
        """HMAC ``payload`` under this host's key, domain-separated by
        ``purpose`` (e.g. ``"checkpoint"``, ``"recover"``)."""
        self.hash_count += 1
        return self._registry.sign(
            f"host:{self.host}", purpose.encode() + b"|" + payload
        )

    def verify_seal(
        self, host: str, purpose: str, payload: bytes, seal: bytes
    ) -> bool:
        """Check a seal claimed to be ``host``'s over ``payload``."""
        self.hash_count += 1
        if not isinstance(seal, (bytes, bytearray)):
            return False
        return self._registry.verify(
            f"host:{host}", purpose.encode() + b"|" + payload, bytes(seal)
        )


def forged_token(frame: FrameID, entry: str, host: str) -> Token:
    """A token with a bogus MAC — used by attack simulations."""
    return Token(host, frame, entry, os.urandom(8), os.urandom(32))
