"""Fragment compilation: lower fragment bodies to Python closures.

The interpreter in :mod:`host` walks the IR expression tree and
``isinstance``-dispatches every op on every step.  Fragment bodies are
straight-line and immutable once the splitter has produced them, so all
of that dispatch can be resolved **once**: this module compiles each
expression into a closure ``fn(host, frame) -> value``, each op into a
closure ``fn(host, state) -> None``, and each terminator into a closure
``fn(host, state) -> Optional[ExecutionState]``.

Closures take the executing host as a parameter rather than closing over
it, so a split program is compiled once and shared by every
:class:`~repro.runtime.host.TrustedHost` built from it (the compiled
form is memoized on the ``SplitProgram`` object).

Semantics are identical to the interpreter by construction — every
closure body is the corresponding interpreter branch with the dispatch
hoisted out — and ``tests/runtime/test_compiled_differential.py`` checks
this by running seeded programs both ways.  Set ``REPRO_COMPILE=0`` to
fall back to the tree-walking interpreter (useful for debugging and for
the differential tests themselves).

Operation accounting is unchanged: ``run_chain`` charges
``len(fragment.ops) + 1`` simulated ops per fragment either way, so
message counts and simulated times are bit-identical across modes.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Optional, Tuple

from ..labels import Label
from ..splitter import ir
from ..splitter.fragments import (
    Fragment,
    OpAssignVar,
    OpForward,
    OpSetElem,
    OpSetField,
    SplitProgram,
    TermBranch,
    TermCall,
    TermHalt,
    TermJump,
    TermReturn,
)
from .values import ObjectRef

#: ``fn(host, frame) -> value``
ExprFn = Callable[[Any, Any], Any]
#: ``fn(host, state) -> None``
OpFn = Callable[[Any, Any], None]
#: ``fn(host, state) -> Optional[ExecutionState]``
TermFn = Callable[[Any, Any], Any]


def compilation_enabled() -> bool:
    """Honour the ``REPRO_COMPILE`` escape hatch (default: on)."""
    return os.environ.get("REPRO_COMPILE", "1") != "0"


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


def _java_div(left: int, right: int) -> int:
    # Java semantics: truncate toward zero.
    quotient = abs(left) // abs(right)
    return quotient if (left >= 0) == (right >= 0) else -quotient


def compile_expr(expr: ir.IRExpr) -> ExprFn:
    """One closure per IR node; dispatch happens here, not per step."""
    if isinstance(expr, ir.Const):
        value = expr.value
        return lambda host, frame: value
    if isinstance(expr, ir.VarUse):
        name = expr.name
        return lambda host, frame: host.var(frame, name)
    if isinstance(expr, ir.FieldUse):
        cls, field = expr.cls, expr.field
        if expr.obj is None:
            return lambda host, frame: host.read_field(cls, field, None)
        obj_fn = compile_expr(expr.obj)

        def field_use(host, frame):
            ref = obj_fn(host, frame)
            if ref is None:
                raise RuntimeError("null dereference in field read")
            return host.read_field(cls, field, ref.oid)

        return field_use
    if isinstance(expr, ir.BinOp):
        return _compile_binop(expr)
    if isinstance(expr, ir.UnOp):
        operand_fn = compile_expr(expr.operand)
        if expr.op == "!":
            return lambda host, frame: not operand_fn(host, frame)
        return lambda host, frame: -operand_fn(host, frame)
    if isinstance(expr, ir.NewObj):
        cls = expr.cls
        return lambda host, frame: ObjectRef(cls)
    if isinstance(expr, ir.NewArr):
        length_fn = compile_expr(expr.length)
        label = expr.label

        def new_arr(host, frame):
            # Routed through the host so the allocation is WAL-logged
            # when a durable store is attached (crash recovery).
            return host.alloc_array(length_fn(host, frame), label)

        return new_arr
    if isinstance(expr, ir.ArrayUse):
        array_fn = compile_expr(expr.array)
        index_fn = compile_expr(expr.index)
        return lambda host, frame: host.read_element(
            array_fn(host, frame), index_fn(host, frame)
        )
    if isinstance(expr, ir.ArrayLen):
        array_fn = compile_expr(expr.array)

        def array_len(host, frame):
            ref = array_fn(host, frame)
            if ref is None:
                raise RuntimeError("null dereference in array length")
            return ref.length

        return array_len
    if isinstance(expr, ir.DowngradeExpr):
        # declassify/endorse have no run-time cost (Section 2.2).
        return compile_expr(expr.inner)
    raise AssertionError(f"unknown expression {expr!r}")


def _compile_binop(expr: ir.BinOp) -> ExprFn:
    op = expr.op
    left_fn = compile_expr(expr.left)
    right_fn = compile_expr(expr.right)
    if op == "&&":
        return lambda host, frame: bool(left_fn(host, frame)) and bool(
            right_fn(host, frame)
        )
    if op == "||":
        return lambda host, frame: bool(left_fn(host, frame)) or bool(
            right_fn(host, frame)
        )
    if op == "+":
        return lambda host, frame: left_fn(host, frame) + right_fn(host, frame)
    if op == "-":
        return lambda host, frame: left_fn(host, frame) - right_fn(host, frame)
    if op == "*":
        return lambda host, frame: left_fn(host, frame) * right_fn(host, frame)
    if op == "/":
        return lambda host, frame: _java_div(
            left_fn(host, frame), right_fn(host, frame)
        )
    if op == "%":

        def java_mod(host, frame):
            left = left_fn(host, frame)
            right = right_fn(host, frame)
            return left - _java_div(left, right) * right

        return java_mod
    if op == "==":
        return lambda host, frame: left_fn(host, frame) == right_fn(host, frame)
    if op == "!=":
        return lambda host, frame: left_fn(host, frame) != right_fn(host, frame)
    if op == "<":
        return lambda host, frame: left_fn(host, frame) < right_fn(host, frame)
    if op == "<=":
        return lambda host, frame: left_fn(host, frame) <= right_fn(host, frame)
    if op == ">":
        return lambda host, frame: left_fn(host, frame) > right_fn(host, frame)
    if op == ">=":
        return lambda host, frame: left_fn(host, frame) >= right_fn(host, frame)
    raise AssertionError(f"unknown operator {op!r}")


# ----------------------------------------------------------------------
# Ops
# ----------------------------------------------------------------------


def compile_op(op) -> OpFn:
    if isinstance(op, OpAssignVar):
        var = op.var
        expr_fn = compile_expr(op.expr)

        def assign_var(host, state):
            host.set_var(state.frame, var, expr_fn(host, state.frame))

        return assign_var
    if isinstance(op, OpSetField):
        cls, field = op.cls, op.field
        expr_fn = compile_expr(op.expr)
        if op.obj is None:

            def set_static(host, state):
                host.write_field(cls, field, None, expr_fn(host, state.frame))

            return set_static
        obj_fn = compile_expr(op.obj)

        def set_field(host, state):
            value = expr_fn(host, state.frame)
            ref = obj_fn(host, state.frame)
            if ref is None:
                raise RuntimeError("null dereference in field write")
            host.write_field(cls, field, ref.oid, value)

        return set_field
    if isinstance(op, OpSetElem):
        array_fn = compile_expr(op.array)
        index_fn = compile_expr(op.index)
        expr_fn = compile_expr(op.expr)

        def set_elem(host, state):
            frame = state.frame
            host.write_element(
                array_fn(host, frame),
                index_fn(host, frame),
                expr_fn(host, frame),
            )

        return set_elem
    if isinstance(op, OpForward):
        var = op.var
        targets = tuple(op.hosts)

        def forward(host, state):
            frame = state.frame
            value = host.var(frame, var)
            plan = host.split.methods[frame.method_key]
            label = plan.var_labels.get(var, Label.constant())
            slot = (frame.fid, var)
            for target in targets:
                if target == host.name:
                    continue
                host.defer_forward(target, slot, value, label, frame)
            if host.opt_level == 0:
                host.flush_forwards(piggyback_for=None)

        return forward
    raise AssertionError(f"unknown op {op!r}")


# ----------------------------------------------------------------------
# Terminators
# ----------------------------------------------------------------------


def compile_terminator(terminator) -> TermFn:
    if isinstance(terminator, TermJump):
        plan = terminator.plan
        return lambda host, state: host._run_plan(plan, state)
    if isinstance(terminator, TermBranch):
        cond_fn = compile_expr(terminator.cond)
        plan_true = terminator.plan_true
        plan_false = terminator.plan_false

        def branch(host, state):
            plan = plan_true if cond_fn(host, state.frame) else plan_false
            return host._run_plan(plan, state)

        return branch
    if isinstance(terminator, TermCall):
        arg_fns = tuple(
            (param, compile_expr(expr)) for param, expr in terminator.args
        )

        def call(host, state):
            frame = state.frame
            arg_values = {
                param: expr_fn(host, frame) for param, expr_fn in arg_fns
            }
            return host._finish_call(terminator, state, arg_values)

        return call
    if isinstance(terminator, TermReturn):
        if terminator.expr is None:
            return lambda host, state: host._finish_return(state, None)
        expr_fn = compile_expr(terminator.expr)
        return lambda host, state: host._finish_return(
            state, expr_fn(host, state.frame)
        )
    if isinstance(terminator, TermHalt):

        def halt(host, state):
            from .host import HaltSignal

            raise HaltSignal()

        return halt
    raise AssertionError(f"unknown terminator {terminator!r}")


# ----------------------------------------------------------------------
# Fragments / whole programs
# ----------------------------------------------------------------------


class CompiledFragment:
    """A fragment lowered to closures, ready for ``run_chain``."""

    __slots__ = ("host", "charge", "ops", "terminator")

    def __init__(self, fragment: Fragment) -> None:
        self.host = fragment.host
        #: same accounting as the interpreter: one simulated op per IR
        #: op plus one for the terminator.
        self.charge = len(fragment.ops) + 1
        self.ops: Tuple[OpFn, ...] = tuple(
            compile_op(op) for op in fragment.ops
        )
        self.terminator: TermFn = compile_terminator(fragment.terminator)


class CompiledProgram:
    """Per-split compiled-fragment cache plus tiering counters.

    ``run_chain`` interprets a fragment's first execution and compiles
    it when it is entered a second time (``heat`` tracks first
    entries), so one-shot fragments never pay closure construction
    while loop bodies and repeatedly-called fragments run compiled.
    """

    __slots__ = ("fragments", "heat")

    def __init__(self) -> None:
        self.fragments: Dict[str, CompiledFragment] = {}
        self.heat: Dict[str, int] = {}

    def get(self, entry: str) -> Optional[CompiledFragment]:
        return self.fragments.get(entry)

    def __setitem__(self, entry: str, fragment: CompiledFragment) -> None:
        self.fragments[entry] = fragment


def compile_split(split: SplitProgram) -> CompiledProgram:
    """The compiled-fragment cache of a split program, memoized on
    ``split``.

    All hosts built from the same ``SplitProgram`` share one compiled
    form; the closures receive the executing host as a parameter.
    Entries are filled lazily (second execution of each fragment, see
    ``run_chain``) so a fragment altered *between* splitting and
    execution — the fault-injection tests do this deliberately — is
    compiled as altered.  Fragments are assumed immutable once running.
    """
    cached: Optional[CompiledProgram] = getattr(split, "_compiled", None)
    if cached is None:
        cached = CompiledProgram()
        split._compiled = cached
    return cached
