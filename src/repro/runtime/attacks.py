"""Adversarial hosts (Section 3.2's threat model).

A *bad host* has full access to the part of the program executing on it,
can fabricate apparently-authentic messages from other bad hosts, and
can share information with them — but it cannot forge messages from good
hosts, and it cannot mint the capability tokens good hosts sign.

The :class:`Adversary` drives every attack the paper's dynamic checks
must stop (Figure 6): illegal field reads/writes, rgoto/sync to
privileged entry points, forged and replayed capabilities, mismatched
program hashes, and low-integrity data forwards — plus the
crash-recovery protocol's attack surface: forged checkpoint seals,
rolled-back checkpoint replays, and fabricated recovery announcements
for live hosts.  Each attempt reports whether the good host rejected
it.

Creating an :class:`Adversary` switches the network's quarantine layer
on: a detected violation no longer just returns ``_REJECTED`` — it
raises :class:`~repro.runtime.network.SecurityAbort` and blacklists the
bad host, which is exactly the fail-closed unwinding the executor needs
instead of a stall.  The attack helpers catch the abort and record it
as a rejection.
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Optional

from ..splitter.fragments import SplitProgram
from .checkpoint import Checkpoint, CheckpointTamperError
from .executor import DistributedExecutor
from .host import _REJECTED, TrustedHost
from .network import Message, SecurityAbort
from .tokens import Token, forged_token
from .values import FrameID


class AttackReport:
    """Outcome of one attack attempt."""

    __slots__ = ("name", "rejected", "detail")

    def __init__(self, name: str, rejected: bool, detail: str = "") -> None:
        self.name = name
        self.rejected = rejected
        self.detail = detail

    def __repr__(self) -> str:
        verdict = "REJECTED" if self.rejected else "!! ACCEPTED !!"
        return f"AttackReport({self.name}: {verdict})"


class Adversary:
    """A subverted host mounting attacks against the good hosts."""

    def __init__(self, executor: DistributedExecutor, bad_host: str) -> None:
        self.executor = executor
        self.network = executor.network
        self.split: SplitProgram = executor.split
        self.bad_host = bad_host
        self.reports: List[AttackReport] = []
        #: capabilities observed in transit to the bad host.
        self.captured_tokens: List[Token] = []
        # Once an adversary is in play, detections escalate: reject,
        # blacklist, and unwind via SecurityAbort.
        self.network.quarantine_enabled = True

    # -- reconnaissance ---------------------------------------------------------

    def capture_tokens(self) -> List[Token]:
        """Harvest every token a good host ever sent to the bad host.

        Bad hosts legitimately receive capabilities (to pass back via
        lgoto); the question is what they can do with them.
        """
        for message in self.network.message_log:
            if message.dst != self.bad_host:
                continue
            token = message.payload.get("token")
            if isinstance(token, Token):
                self.captured_tokens.append(token)
        return self.captured_tokens

    def _note(self, name: str, outcome: Any, detail: str = "") -> AttackReport:
        rejected = (
            outcome is _REJECTED
            or outcome is None
            or outcome is False
            or isinstance(outcome, (SecurityAbort, CheckpointTamperError))
        )
        report = AttackReport(name, rejected, detail)
        self.reports.append(report)
        return report

    def _request(self, message: Message) -> Any:
        """Send an attack message; a SecurityAbort counts as rejection.

        With quarantine on, the victim's detection raises instead of
        returning ``_REJECTED`` — and once the bad host is blacklisted,
        even *reaching* a good host raises.  Either way the attack
        failed, so return the abort for :meth:`_note` to record.
        """
        try:
            return self.network.request(message)
        except SecurityAbort as abort:
            return abort

    def _payload(self, **kwargs: Any) -> dict:
        payload = {"digest": self.split.digest}
        payload.update(kwargs)
        return payload

    # -- field attacks -----------------------------------------------------------

    def try_get_field(self, cls: str, field: str) -> AttackReport:
        """Request a field the bad host is not cleared to read."""
        placement = self.split.fields[(cls, field)]
        outcome = self._request(
            Message(
                "getField",
                self.bad_host,
                placement.host,
                self._payload(cls=cls, field=field, oid=None),
            )
        )
        return self._note(f"getField {cls}.{field}", outcome)

    def try_set_field(self, cls: str, field: str, value: Any) -> AttackReport:
        """Corrupt a field whose integrity the bad host lacks."""
        placement = self.split.fields[(cls, field)]
        outcome = self._request(
            Message(
                "setField",
                self.bad_host,
                placement.host,
                self._payload(cls=cls, field=field, oid=None, value=value),
            )
        )
        return self._note(f"setField {cls}.{field}", outcome)

    # -- control attacks -----------------------------------------------------------

    def try_rgoto(self, entry: str, frame: Optional[FrameID] = None) -> AttackReport:
        """Invoke a privileged entry point directly (Section 5.4: 'if B
        maliciously attempts to invoke any entry point ... the access
        control checks deny the operation')."""
        fragment = self.split.fragments[entry]
        frame = frame or FrameID(fragment.method_key)
        outcome = self._request(
            Message(
                "rgoto",
                self.bad_host,
                fragment.host,
                self._payload(entry=entry, frame=frame, token=None, vars={}),
            )
        )
        return self._note(f"rgoto {entry}", outcome)

    def try_sync(self, entry: str) -> AttackReport:
        """Ask a good host to mint a capability the bad host may not have."""
        fragment = self.split.fragments[entry]
        outcome = self._request(
            Message(
                "sync",
                self.bad_host,
                fragment.host,
                self._payload(
                    entry=entry,
                    frame=FrameID(fragment.method_key),
                    token=None,
                ),
            )
        )
        if isinstance(outcome, Token):
            return self._note(f"sync {entry}", outcome, "token minted!")
        return self._note(f"sync {entry}", outcome)

    def try_forged_lgoto(self, entry: str) -> AttackReport:
        """Present a token with a fabricated MAC."""
        fragment = self.split.fragments[entry]
        token = forged_token(FrameID(fragment.method_key), entry, fragment.host)
        outcome = self._request(
            Message(
                "lgoto",
                self.bad_host,
                fragment.host,
                self._payload(token=token, vars={}),
            )
        )
        return self._note(f"forged lgoto {entry}", outcome)

    def try_replay(self, token: Token) -> AttackReport:
        """Replay a previously consumed capability (one-shot check)."""
        outcome = self._request(
            Message(
                "lgoto",
                self.bad_host,
                token.host,
                self._payload(token=token, vars={}),
            )
        )
        return self._note(f"replay lgoto {token.entry}", outcome)

    def try_wrong_program(self, cls: str, field: str) -> AttackReport:
        """Speak for a different partitioning (Section 8's hash check)."""
        placement = self.split.fields[(cls, field)]
        outcome = self._request(
            Message(
                "getField",
                self.bad_host,
                placement.host,
                {"cls": cls, "field": field, "oid": None,
                 "digest": b"not-the-program-you-agreed-to"},
            )
        )
        return self._note(f"mismatched hash getField {cls}.{field}", outcome)

    def try_forward(
        self, method_key, var: str, value: Any, target_host: str
    ) -> AttackReport:
        """Forward corrupt data into a trusted frame variable."""
        frame = FrameID(method_key)
        outcome = self._request(
            Message(
                "forward",
                self.bad_host,
                target_host,
                self._payload(vars={frame: {var: value}}),
            )
        )
        return self._note(f"forward {var} to {target_host}", outcome)

    # -- recovery-protocol attacks --------------------------------------------------

    def _force_recovery(
        self, host: TrustedHost, restore: Callable[[], None]
    ) -> Any:
        """Crash ``host`` onto tampered durable storage and watch it
        refuse to come back up.

        The attack *succeeds* only if the host recovers from the
        tampered storage without noticing.  On detection the genuine
        storage is put back and the victim recovered cleanly, so later
        attacks (and the program, if still running) see a healthy host.
        """
        host.crash_wipe()
        try:
            host.recover()
        except (SecurityAbort, CheckpointTamperError) as abort:
            restore()
            host.crash_wipe()
            host.recover()
            return abort
        return True

    def try_forged_checkpoint(self, victim: str) -> AttackReport:
        """Swap in a checkpoint sealed with a fabricated MAC.

        Bad hosts cannot compute a good host's HMAC, so the best they
        can do against storage they control is attach a random seal.
        The victim's recovery must fail closed.
        """
        host = self.executor.hosts[victim]
        host.ensure_durable()
        store = host.durable
        genuine_checkpoint, genuine_wal = store.checkpoint, list(store.wal)

        def restore() -> None:
            store.checkpoint = genuine_checkpoint
            store.wal = list(genuine_wal)

        forged = Checkpoint(
            victim, store.high_water, host.snapshot_state(),
            seal=os.urandom(32),
        )
        store.checkpoint = forged
        store.wal = []
        outcome = self._force_recovery(host, restore)
        return self._note(
            f"forged checkpoint seal on {victim}", outcome,
            "recovered from a forged checkpoint!" if outcome is True else "",
        )

    def try_checkpoint_rollback(self, victim: str) -> AttackReport:
        """Replay an older — genuinely sealed — checkpoint.

        The stale checkpoint's seal verifies, but its epoch no longer
        matches the sealed high-water counter, so the rollback is
        detected (the TPM-register trick).
        """
        host = self.executor.hosts[victim]
        host.ensure_durable()
        store = host.durable
        stale = store.checkpoint
        host.take_checkpoint()  # legitimate progress bumps high_water
        fresh = store.checkpoint

        def restore() -> None:
            store.checkpoint = fresh
            store.wal = []

        store.checkpoint = stale
        store.wal = []
        outcome = self._force_recovery(host, restore)
        return self._note(
            f"checkpoint rollback on {victim}", outcome,
            "recovered from a rolled-back checkpoint!"
            if outcome is True else "",
        )

    def try_fake_recovery(
        self, live_host: str, target: Optional[str] = None
    ) -> AttackReport:
        """Announce a recovery on behalf of a live good host.

        A peer believing this would re-forward pending data and reset
        its duplicate-suppression view of ``live_host``.  The bad host
        cannot seal the announcement, and it cannot even claim to *be*
        ``live_host`` (good hosts check the claimed identity against
        the authenticated message source), so the announcement is
        rejected and the bad host quarantined.
        """
        if target is None:
            target = next(
                descriptor.name
                for descriptor in self.split.config.hosts
                if descriptor.name not in (self.bad_host, live_host)
            )
        outcome = self._request(
            Message(
                "recover",
                self.bad_host,
                target,
                self._payload(
                    host=live_host, epoch=1, seq=1, seal=os.urandom(32)
                ),
            )
        )
        return self._note(
            f"fake recovery announcement for {live_host}", outcome
        )

    # -- summaries ------------------------------------------------------------------

    def all_rejected(self) -> bool:
        return all(report.rejected for report in self.reports)

    def accepted(self) -> List[AttackReport]:
        return [report for report in self.reports if not report.rejected]
