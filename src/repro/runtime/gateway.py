"""The serve-mode gateway: many clients, one runtime, structured errors.

``repro serve`` turns the partitioning runtime into a long-lived
service.  Clients connect over TCP, authenticate a *principal* in a
hello frame, and then multiplex any number of concurrent execution
requests over the single connection; the gateway runs each request
against a pooled session (:class:`~repro.runtime.session.SessionPool`
over a shared :class:`~repro.runtime.session.RuntimeImage`) or — on
request — over real forked host processes via
:func:`~repro.runtime.transport.tcp.run_split_over_tcp`, and replies
with the run's observables.

Contract highlights:

* **Framing** — the same 4-byte big-endian length-prefixed JSON frames
  the host-to-host wire uses (:mod:`repro.runtime.transport.tcp`), so
  one codec serves both planes.
* **Multiplexing** — each ``run`` frame carries a client-chosen ``id``;
  replies carry it back, so a client may pipeline requests and match
  responses out of order.  Requests from one connection execute
  concurrently (blocking session work runs on worker threads).
* **Rate limiting** — per-principal token buckets
  (:class:`~repro.runtime.transport.rate_limit.PrincipalRateLimiter`);
  an over-quota request is shed with a ``rate-limit`` error frame
  carrying ``retry_after`` seconds.  One principal's quota never
  affects another's.
* **Structured errors** — a failed request always produces
  ``{"t": "error", "id": ..., "code": ..., "detail": ...}`` with a
  code from the closed set ``bad-request`` / ``rate-limit`` /
  ``timeout`` / ``quarantine`` / ``storage-degraded`` / ``internal``
  — never a raw traceback on the wire.  The CLI error paths use the
  same codes (``repro run`` on a missing file prints the same
  ``bad-request`` shape the gateway would send).

The gateway is deterministic where it matters: pooled sessions are
reset between requests, so every run of a workload reports observables
bit-identical to a fresh solo :class:`~repro.runtime.session.Session`
— the property :func:`smoke` (the CI serve-smoke job) asserts for all
five Table 1 workloads over both the pooled path and real TCP host
processes, under ≥16 concurrent clients.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..reporting.serve import ServeStats
from ..splitter import split_source
from .network import DeliveryTimeoutError, SecurityAbort
from .session import RuntimeImage, Session, SessionPool
from .storage import StorageUnavailableError
from .transport.rate_limit import PrincipalRateLimiter
from .transport.tcp import _LEN, MAX_FRAME, run_split_over_tcp

#: The closed set of wire error codes (gateway and CLI share it).
ERROR_CODES = (
    "bad-request",
    "rate-limit",
    "timeout",
    "quarantine",
    "storage-degraded",
    "internal",
)

#: Workloads servable by name: the five Table 1 programs.
WORKLOAD_NAMES = ("list", "ot", "tax", "work", "medical")


def _workload_module(name: str):
    from .. import workloads

    return {
        "list": workloads.listcompare,
        "ot": workloads.ot,
        "tax": workloads.tax,
        "work": workloads.work,
        "medical": workloads.medical,
    }[name]


class GatewayError(Exception):
    """A request failure with a structured wire representation."""

    def __init__(
        self, code: str, detail: str, retry_after: Optional[float] = None
    ) -> None:
        assert code in ERROR_CODES, code
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail
        self.retry_after = retry_after

    def frame(self, request_id: Any) -> Dict[str, Any]:
        frame: Dict[str, Any] = {
            "t": "error",
            "id": request_id,
            "code": self.code,
            "detail": self.detail,
        }
        if self.retry_after is not None:
            frame["retry_after"] = round(self.retry_after, 6)
        return frame


def classify_error(exc: BaseException) -> Tuple[str, str]:
    """Map a runtime exception onto the structured error contract."""
    if isinstance(exc, GatewayError):
        return exc.code, exc.detail
    if isinstance(exc, DeliveryTimeoutError):
        return "timeout", str(exc)
    if isinstance(exc, SecurityAbort):
        return "quarantine", str(exc)
    if isinstance(exc, StorageUnavailableError):
        return "storage-degraded", str(exc)
    if isinstance(exc, (KeyError, ValueError, TypeError)):
        return "bad-request", str(exc)
    return "internal", f"{type(exc).__name__}: {exc}"


# -- asyncio framing (same wire format as transport.tcp) -------------------


async def read_frame(reader: asyncio.StreamReader) -> Dict[str, Any]:
    header = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ValueError(f"frame of {length} bytes exceeds cap")
    body = await reader.readexactly(length)
    return json.loads(body.decode("utf-8"))


async def write_frame(
    writer: asyncio.StreamWriter, frame: Dict[str, Any]
) -> None:
    body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    writer.write(_LEN.pack(len(body)) + body)
    await writer.drain()


# -- the gateway -----------------------------------------------------------


class Gateway:
    """Asyncio TCP server multiplexing execution requests per client."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        rate: float = 16.0,
        burst: float = 32.0,
        opt_level: int = 1,
        stats: Optional[ServeStats] = None,
        run_timeout: float = 120.0,
    ) -> None:
        self.host = host
        self.port = port
        self.opt_level = opt_level
        self.run_timeout = run_timeout
        self.stats = stats or ServeStats()
        self.limiter = PrincipalRateLimiter(rate, burst)
        self._server: Optional[asyncio.base_events.Server] = None
        #: workload -> (split, image, pool); built lazily, thread-safe.
        self._pools: Dict[str, Tuple[Any, RuntimeImage, SessionPool]] = {}
        self._pools_lock = threading.Lock()
        #: serializes pool acquire/release across worker threads.
        self._session_lock = threading.Lock()
        #: serializes fork-based TCP runs (fork from one thread at a time).
        self._tcp_lock = threading.Lock()
        #: live per-connection handler tasks, reaped by close().
        self._conn_tasks: set = set()
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._client, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Reap connection handlers before the loop goes away, so no
        # half-cancelled task survives into interpreter teardown.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()

    # -- execution ---------------------------------------------------------

    def _pool(self, name: str) -> Tuple[Any, RuntimeImage, SessionPool]:
        """Split + shared image + session pool for one workload.

        Built on first request (frontend + splitter run once; the pool
        then serves every later request from recycled sessions).
        """
        with self._pools_lock:
            entry = self._pools.get(name)
            if entry is None:
                module = _workload_module(name)
                split = split_source(module.source(), module.config()).split
                image = RuntimeImage.for_split(split)
                pool = SessionPool(image, opt_level=self.opt_level)
                entry = (split, image, pool)
                self._pools[name] = entry
            return entry

    def oracle(self, name: str) -> Dict[str, Any]:
        """Fresh solo-session observables for ``name`` (the invariant
        every pooled or TCP run must reproduce bit-identically)."""
        _split, image, _pool = self._pool(name)
        session = Session(image, opt_level=self.opt_level)
        session.run()
        return session.observables()

    def _execute_sim(self, name: str) -> Dict[str, Any]:
        """Run ``name`` on a pooled session (worker thread)."""
        _split, _image, pool = self._pool(name)
        with self._session_lock:
            session = pool.acquire()
        try:
            session.run()
            return session.observables()
        finally:
            with self._session_lock:
                pool.release(session)

    def _execute_tcp(self, name: str) -> Dict[str, Any]:
        """Run ``name`` over real forked host processes (worker thread)."""
        split, _image, _pool = self._pool(name)
        with self._tcp_lock:
            result = run_split_over_tcp(
                split, opt_level=self.opt_level, timeout=self.run_timeout
            )
        return result.observables()

    # -- per-connection protocol -------------------------------------------

    async def _client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.note_connection()
        me = asyncio.current_task()
        if me is not None:
            self._conn_tasks.add(me)
        write_lock = asyncio.Lock()
        tasks: List[asyncio.Task] = []
        try:
            hello = await read_frame(reader)
            if hello.get("t") != "hello" or not isinstance(
                hello.get("principal"), str
            ):
                async with write_lock:
                    await write_frame(
                        writer,
                        GatewayError(
                            "bad-request",
                            "expected hello frame with a principal",
                        ).frame(None),
                    )
                return
            principal = hello["principal"]
            async with write_lock:
                await write_frame(
                    writer,
                    {"t": "welcome", "workloads": list(WORKLOAD_NAMES)},
                )
            while True:
                try:
                    frame = await read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                kind = frame.get("t")
                if kind == "bye":
                    break
                if kind == "stats":
                    async with write_lock:
                        await write_frame(
                            writer,
                            {"t": "stats", "stats": self.stats.snapshot()},
                        )
                    continue
                if kind != "run":
                    async with write_lock:
                        await write_frame(
                            writer,
                            GatewayError(
                                "bad-request",
                                f"unknown frame type {kind!r}",
                            ).frame(frame.get("id")),
                        )
                    continue
                tasks.append(
                    asyncio.ensure_future(
                        self._run(frame, principal, writer, write_lock)
                    )
                )
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except asyncio.CancelledError:
            # Gateway shutdown: end the handler quietly — asyncio's
            # stream-protocol callback re-raises if the task stays
            # cancelled, and there is nothing left to unwind here.
            pass
        finally:
            if me is not None:
                self._conn_tasks.discard(me)
            for task in tasks:
                if not task.done():
                    task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _run(
        self,
        frame: Dict[str, Any],
        principal: str,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        request_id = frame.get("id")
        workload = frame.get("workload")
        transport = frame.get("transport", "sim")
        start = time.perf_counter()
        try:
            if workload not in WORKLOAD_NAMES:
                raise GatewayError(
                    "bad-request",
                    f"unknown workload {workload!r}; "
                    f"serving {', '.join(WORKLOAD_NAMES)}",
                )
            if transport not in ("sim", "tcp"):
                raise GatewayError(
                    "bad-request", f"unknown transport {transport!r}"
                )
            allowed, retry_after = self.limiter.admit(principal)
            if not allowed:
                raise GatewayError(
                    "rate-limit",
                    f"principal {principal!r} over quota",
                    retry_after=retry_after,
                )
            execute = (
                self._execute_tcp if transport == "tcp" else self._execute_sim
            )
            observables = await asyncio.wait_for(
                asyncio.to_thread(execute, workload),
                timeout=self.run_timeout,
            )
        except asyncio.TimeoutError:
            error = GatewayError(
                "timeout",
                f"{workload} exceeded the {self.run_timeout:.0f}s budget",
            )
            self.stats.record(str(workload), 0.0, code=error.code)
            async with write_lock:
                await write_frame(writer, error.frame(request_id))
        except BaseException as exc:  # noqa: BLE001 — contract boundary
            if isinstance(exc, asyncio.CancelledError):
                raise
            code, detail = classify_error(exc)
            self.stats.record(str(workload), 0.0, code=code)
            error = (
                exc
                if isinstance(exc, GatewayError)
                else GatewayError(code, detail)
            )
            async with write_lock:
                await write_frame(writer, error.frame(request_id))
        else:
            wall = time.perf_counter() - start
            self.stats.record(workload, wall, code=None)
            async with write_lock:
                await write_frame(
                    writer,
                    {
                        "t": "result",
                        "id": request_id,
                        "workload": workload,
                        "transport": transport,
                        "observables": observables,
                        "wall_seconds": round(wall, 9),
                    },
                )


# -- client helper ---------------------------------------------------------


class GatewayClient:
    """Async client: one connection, pipelined multiplexed requests."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        welcome: Dict[str, Any],
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.welcome = welcome
        self._ids = 0
        self._pending: Dict[Any, asyncio.Future] = {}
        self._stats_waiters: List[asyncio.Future] = []
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str, port: int, principal: str
    ) -> "GatewayClient":
        reader, writer = await asyncio.open_connection(host, port)
        await write_frame(writer, {"t": "hello", "principal": principal})
        welcome = await read_frame(reader)
        return cls(reader, writer, welcome)

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame.get("t") == "stats":
                    if self._stats_waiters:
                        self._stats_waiters.pop(0).set_result(frame["stats"])
                    continue
                future = self._pending.pop(frame.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except (asyncio.IncompleteReadError, ConnectionError):
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ConnectionError("gateway closed"))
            self._pending.clear()

    async def run(
        self, workload: str, transport: str = "sim"
    ) -> Dict[str, Any]:
        """One execution request; returns the result *or* error frame."""
        self._ids += 1
        request_id = self._ids
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._pending[request_id] = future
        await write_frame(
            self._writer,
            {
                "t": "run",
                "id": request_id,
                "workload": workload,
                "transport": transport,
            },
        )
        return await future

    async def stats(self) -> Dict[str, Any]:
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._stats_waiters.append(future)
        await write_frame(self._writer, {"t": "stats"})
        return await future

    async def close(self) -> None:
        try:
            await write_frame(self._writer, {"t": "bye"})
        except ConnectionError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass
        self._reader_task.cancel()


# -- the serve smoke (CI acceptance sequence) ------------------------------


async def _smoke_async(verbose: bool) -> List[str]:
    failures: List[str] = []

    def note(line: str) -> None:
        if verbose:
            print(f"serve-smoke: {line}")

    gateway = Gateway(rate=1000.0, burst=1000.0)
    host, port = await gateway.start()
    note(f"gateway listening on {host}:{port}")
    try:
        # 1. All five Table 1 workloads over real TCP host processes,
        #    requested through the gateway, bit-identical to the solo
        #    simulated oracle.
        oracles = {
            name: await asyncio.to_thread(gateway.oracle, name)
            for name in WORKLOAD_NAMES
        }
        client = await GatewayClient.connect(host, port, "smoke-tcp")
        for name in WORKLOAD_NAMES:
            reply = await client.run(name, transport="tcp")
            if reply.get("t") != "result":
                failures.append(f"tcp {name}: {reply}")
            elif reply["observables"] != oracles[name]:
                failures.append(
                    f"tcp {name}: observables diverge from oracle\n"
                    f"  tcp:    {reply['observables']}\n"
                    f"  oracle: {oracles[name]}"
                )
            else:
                note(
                    f"tcp {name}: observables match oracle "
                    "("
                    f"{reply['observables']['messages']['total_messages']}"
                    " msgs, "
                    f"{reply['wall_seconds']:.2f}s wall)"
                )
        await client.close()

        # 2. ≥16 concurrent clients multiplexed over pooled sessions,
        #    every run bit-identical to the oracle.
        async def one_client(index: int) -> Optional[str]:
            name = WORKLOAD_NAMES[index % len(WORKLOAD_NAMES)]
            c = await GatewayClient.connect(host, port, f"client-{index}")
            try:
                replies = await asyncio.gather(c.run(name), c.run(name))
            finally:
                await c.close()
            for reply in replies:
                if reply.get("t") != "result":
                    return f"client-{index} {name}: {reply}"
                if reply["observables"] != oracles[name]:
                    return f"client-{index} {name}: diverged from oracle"
            return None

        results = await asyncio.gather(*(one_client(i) for i in range(16)))
        failures.extend(r for r in results if r)
        note("16 concurrent clients x2 runs each: all bit-identical")

        stats = gateway.stats.snapshot()
        if stats["latency"]["count"] < 16 * 2 + len(WORKLOAD_NAMES):
            failures.append(f"latency counters missing runs: {stats}")
        note(
            f"latency: p50={stats['latency']['p50']:.4f}s "
            f"p99={stats['latency']['p99']:.4f}s over "
            f"{stats['latency']['count']} runs"
        )
    finally:
        await gateway.close()

    # 3. Rate limiting sheds the over-quota principal with a structured
    #    error while another principal on the same gateway is untouched.
    limited = Gateway(rate=0.001, burst=3.0)
    host, port = await limited.start()
    try:
        greedy = await GatewayClient.connect(host, port, "greedy")
        polite = await GatewayClient.connect(host, port, "polite")
        replies = await asyncio.gather(
            *(greedy.run("work") for _ in range(6))
        )
        shed = [r for r in replies if r.get("t") == "error"]
        served = [r for r in replies if r.get("t") == "result"]
        if len(served) != 3 or len(shed) != 3:
            failures.append(
                f"rate limiter: expected 3 served / 3 shed, got "
                f"{len(served)} / {len(shed)}"
            )
        for reply in shed:
            if reply.get("code") != "rate-limit" or "retry_after" not in reply:
                failures.append(f"malformed rate-limit error: {reply}")
        polite_reply = await polite.run("work")
        if polite_reply.get("t") != "result":
            failures.append(f"polite principal was shed: {polite_reply}")
        note(
            f"rate limiter shed {len(shed)} over-quota requests "
            f"(retry_after={shed[0].get('retry_after') if shed else '?'}s); "
            "other principal unaffected"
        )

        # 4. Unknown workload gets a structured bad-request, never a
        #    traceback.
        bad = await polite.run("no-such-workload")
        if bad.get("t") != "error" or bad.get("code") != "bad-request":
            failures.append(f"bad workload not rejected cleanly: {bad}")
        note("unknown workload rejected with bad-request error frame")
        await greedy.close()
        await polite.close()
    finally:
        await limited.close()
    return failures


def smoke(verbose: bool = True) -> int:
    """The CI serve-smoke acceptance sequence; returns an exit code."""
    failures = asyncio.run(_smoke_async(verbose))
    if failures:
        for failure in failures:
            print(f"serve-smoke: FAIL {failure}")
        return 1
    if verbose:
        print("serve-smoke: OK")
    return 0
