"""The in-memory reference backend.

Implements the :class:`~repro.runtime.storage.base.StorageBackend`
contract against plain dictionaries.  It persists nothing across
process death — it exists as the executable specification of the
interface (the backend-contract tests run against it and SQLite
identically) and as the substrate the storage fault injector wraps
when a test wants backend failures without touching a real database.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .base import StorageBackend


class MemoryBackend(StorageBackend):
    """Reference backend: rows live in process memory."""

    def __init__(self, host: str) -> None:
        self.host = host
        self._checkpoint: Optional[Tuple[int, str, bytes]] = None
        self._wal: Dict[int, Tuple[int, str, bytes]] = {}

    def append_wal(
        self, epoch: int, index: int, blob: str, seal: bytes
    ) -> None:
        self._wal[index] = (epoch, blob, seal)

    def save_checkpoint(self, epoch: int, blob: str, seal: bytes) -> None:
        self._checkpoint = (epoch, blob, seal)
        self._wal.clear()

    def reset_run(self) -> None:
        self._checkpoint = None
        self._wal.clear()

    def load_checkpoint(self) -> Optional[Tuple[int, str, bytes]]:
        return self._checkpoint

    def load_wal(self) -> List[Tuple[int, int, str, bytes]]:
        return [
            (index, epoch, blob, seal)
            for index, (epoch, blob, seal) in sorted(self._wal.items())
        ]
