"""Tagged-JSON codec for persisted runtime state.

Everything the durable tier stores — WAL records, checkpoint state
snapshots, the session journal, queued control messages, flow-log
entries — is a tree over a closed set of runtime value types.  This
codec maps that tree to JSON deterministically and back:

* JSON-native scalars (``None``/``bool``/``int``/``float``/``str``)
  pass through raw;
* everything else becomes a ``{"t": tag, ...}`` wrapper — bytes (hex),
  tuples, lists, dicts (as ordered key/value pair lists, since runtime
  dict keys are tuples and FrameIDs, not strings), the ``REJECTED``
  sentinel, tokens, frame ids, object/array references, return-info
  records, and labels (reusing the splitter's canonical interned label
  codec so decoded labels land in the hash-consing table).

Reference types are rebuilt with ``object.__new__`` so decoding never
draws from the global id counters; a :class:`DecodeContext` tracks the
highest object/frame id seen so a rehydrated process can advance its
counters past every persisted id (:func:`advance_id_floors`) — absolute
ids carry no meaning, collision-freedom is all that matters.

Decoding is *untrusted input* handling: any malformed structure raises
:class:`StorageCodecError`, which the rehydration path converts to
:class:`~repro.runtime.checkpoint.CheckpointTamperError` (a corrupted
page fails closed, it does not crash the loader with a ``KeyError``).
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Optional

from ...labels import Label
from ...splitter.serialize import (
    SplitDecodeError,
    _dec_label,
    _enc_label,
)
from ..tokens import Token
from ..values import REJECTED, ArrayRef, FrameID, ObjectRef, ReturnInfo
from .. import values as _values


class StorageCodecError(ValueError):
    """Persisted state that does not decode: malformed or tampered."""


class DecodeContext:
    """Tracks the id high-water marks across one decoding session."""

    __slots__ = ("max_oid", "max_fid")

    def __init__(self) -> None:
        self.max_oid = 0
        self.max_fid = 0


def _enc(value: Any) -> Any:
    if value is None or value is True or value is False:
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        return value
    if value is REJECTED:
        return {"t": "rej"}
    if isinstance(value, (bytes, bytearray)):
        return {"t": "b", "v": bytes(value).hex()}
    if isinstance(value, tuple):
        return {"t": "t", "v": [_enc(item) for item in value]}
    if isinstance(value, list):
        return {"t": "l", "v": [_enc(item) for item in value]}
    if isinstance(value, dict):
        return {
            "t": "d",
            "v": [[_enc(k), _enc(v)] for k, v in value.items()],
        }
    if isinstance(value, Token):
        return {
            "t": "tok",
            "host": value.host,
            "frame": _enc(value.frame),
            "entry": value.entry,
            "nonce": value.nonce.hex(),
            "mac": value.mac.hex(),
        }
    if isinstance(value, FrameID):
        return {"t": "fid", "fid": value.fid, "mk": _enc(value.method_key)}
    if isinstance(value, ObjectRef):
        return {"t": "oref", "cls": value.cls, "oid": value.oid}
    if isinstance(value, ArrayRef):
        return {
            "t": "aref",
            "oid": value.oid,
            "length": value.length,
            "host": value.host,
            "label": _enc_label(value.label),
        }
    if isinstance(value, ReturnInfo):
        return {
            "t": "rinfo",
            "host": value.host,
            "frame": _enc(value.frame),
            "var": value.var,
        }
    if isinstance(value, Label):
        return {"t": "lab", "v": _enc_label(value)}
    raise StorageCodecError(f"unencodable runtime value {value!r}")


def _dec(data: Any, ctx: DecodeContext) -> Any:
    if data is None or data is True or data is False:
        return data
    if isinstance(data, (int, float, str)):
        return data
    if not isinstance(data, dict):
        raise StorageCodecError(f"bad encoded node {data!r}")
    tag = data.get("t")
    try:
        if tag == "rej":
            return REJECTED
        if tag == "b":
            return bytes.fromhex(data["v"])
        if tag == "t":
            return tuple(_dec(item, ctx) for item in data["v"])
        if tag == "l":
            return [_dec(item, ctx) for item in data["v"]]
        if tag == "d":
            return {_dec(k, ctx): _dec(v, ctx) for k, v in data["v"]}
        if tag == "tok":
            frame = _dec(data["frame"], ctx)
            if not isinstance(frame, FrameID):
                raise StorageCodecError("token frame is not a FrameID")
            return Token(
                data["host"],
                frame,
                data["entry"],
                bytes.fromhex(data["nonce"]),
                bytes.fromhex(data["mac"]),
            )
        if tag == "fid":
            fid = data["fid"]
            method_key = _dec(data["mk"], ctx)
            if not isinstance(fid, int) or not isinstance(method_key, tuple):
                raise StorageCodecError(f"bad frame id {data!r}")
            frame = object.__new__(FrameID)
            frame.method_key = method_key
            frame.fid = fid
            frame._hash = hash(fid)
            ctx.max_fid = max(ctx.max_fid, fid)
            return frame
        if tag == "oref":
            oid = data["oid"]
            if not isinstance(oid, int):
                raise StorageCodecError(f"bad object id {data!r}")
            ref = object.__new__(ObjectRef)
            ref.cls = data["cls"]
            ref.oid = oid
            ctx.max_oid = max(ctx.max_oid, oid)
            return ref
        if tag == "aref":
            oid, length = data["oid"], data["length"]
            if not isinstance(oid, int) or not isinstance(length, int):
                raise StorageCodecError(f"bad array ref {data!r}")
            ref = object.__new__(ArrayRef)
            ref.oid = oid
            ref.length = length
            ref.host = data["host"]
            ref.label = _dec_label(data["label"])
            ctx.max_oid = max(ctx.max_oid, oid)
            return ref
        if tag == "rinfo":
            frame = _dec(data["frame"], ctx)
            info = object.__new__(ReturnInfo)
            info.host = data["host"]
            info.frame = frame
            info.var = data["var"]
            return info
        if tag == "lab":
            return _dec_label(data["v"])
    except StorageCodecError:
        raise
    except (KeyError, TypeError, ValueError, SplitDecodeError) as error:
        raise StorageCodecError(f"malformed {tag!r} node: {error}") from error
    raise StorageCodecError(f"unknown value tag {tag!r}")


def dumps(value: Any) -> str:
    """Encode ``value`` as deterministic JSON text."""
    return json.dumps(_enc(value), sort_keys=True, separators=(",", ":"))


def loads(text: str, ctx: Optional[DecodeContext] = None) -> Any:
    """Decode codec JSON; raises :class:`StorageCodecError` on any
    malformed input."""
    try:
        data = json.loads(text)
    except (json.JSONDecodeError, TypeError) as error:
        raise StorageCodecError(f"undecodable blob: {error}") from error
    return _dec(data, ctx if ctx is not None else DecodeContext())


def advance_id_floors(ctx: DecodeContext) -> None:
    """Advance the global object/frame id counters past every id seen
    by ``ctx``, so objects allocated after a rehydration can never
    collide with persisted ones."""
    current_oid = next(_values._object_ids)
    _values._object_ids = itertools.count(
        max(current_oid, ctx.max_oid + 1)
    )
    current_fid = next(_values._frame_ids)
    _values._frame_ids = itertools.count(
        max(current_fid, ctx.max_fid + 1)
    )
