"""Storage-level fault injection.

Two attack surfaces, matching how real storage fails:

* **Live faults** — a seeded :class:`StorageFaultInjector` installs
  itself as a :class:`SessionStorage` ``fault_hook`` and makes backend
  operations fail *while the session runs*: locked/busy database
  (transient, exercises the bounded retry path) and disk-full
  (hard, exercises graceful degradation).  The session must still
  complete with correct observables — memory is authoritative.
* **Post-mortem tampering** — :func:`tamper` mutates a dead session's
  storage directory the way torn writes, corrupted pages, partial
  fsyncs, and rollbacks manifest on disk.  Rehydration must then fail
  closed (:class:`CheckpointTamperError`) or report the tier unusable
  (:class:`StorageUnavailableError`) — never resurrect forged state.
"""

from __future__ import annotations

import errno
import os
import random
import sqlite3
from typing import Optional

from .base import TransientStorageError


class StorageFaultPolicy:
    """Probabilities and triggers for live storage faults."""

    def __init__(
        self,
        busy_prob: float = 0.0,
        diskfull_after: Optional[int] = None,
    ) -> None:
        if not 0.0 <= busy_prob <= 1.0:
            raise ValueError("busy_prob must be within [0, 1]")
        if diskfull_after is not None and diskfull_after < 0:
            raise ValueError("diskfull_after must be non-negative")
        #: chance each backend op first raises a locked-database error.
        self.busy_prob = busy_prob
        #: hard ENOSPC on the Nth write op (None = never).
        self.diskfull_after = diskfull_after


class StorageFaultInjector:
    """Seeded live-fault hook for a :class:`SessionStorage`.

    Busy faults fire at most once per operation — the immediate retry
    then succeeds, which is exactly the transient contract; unbounded
    repeats would just test the degradation path twice.
    """

    _WRITE_OPS = (
        "append_wal",
        "save_checkpoint",
        "boundary",
        "sidecar",
        "begin",
    )

    def __init__(self, policy: StorageFaultPolicy, seed: int = 0) -> None:
        self.policy = policy
        self.rng = random.Random(seed)
        self.busy_faults = 0
        self.diskfull_faults = 0
        self._writes = 0
        self._busy_pending = False

    def install(self, storage) -> None:
        storage.fault_hook = self

    def __call__(self, op: str) -> None:
        if op in self._WRITE_OPS:
            self._writes += 1
            after = self.policy.diskfull_after
            if after is not None and self._writes > after:
                self.diskfull_faults += 1
                raise OSError(errno.ENOSPC, "no space left on device")
        if self._busy_pending:
            # This is the retry of the op we just failed: let it pass.
            self._busy_pending = False
            return
        if self.policy.busy_prob and self.rng.random() < self.policy.busy_prob:
            self.busy_faults = self.busy_faults + 1
            self._busy_pending = True
            raise TransientStorageError("database is locked (injected)")


# ---------------------------------------------------------------------------
# Post-mortem tampering
# ---------------------------------------------------------------------------

TAMPER_KINDS = (
    "torn-write",
    "corrupt-page",
    "rollback",
    "partial-fsync",
    "drop-sidecar",
)


def tamper(directory: str, kind: str) -> None:
    """Mutate a dead session's storage directory in place.

    * ``torn-write`` — truncate the tail off the last WAL record's blob
      (a write that died partway through a row).
    * ``corrupt-page`` — flip one byte inside a persisted checkpoint
      blob (a bad sector under a valid-looking file).
    * ``rollback`` — rewind the journal row to an earlier boundary
      while leaving the sealed sidecar counter alone (the classic
      replay-old-state attack the monotonic counter exists to catch).
    * ``partial-fsync`` — delete the journal row entirely: the commit
      that claimed durability never reached the platter.
    * ``drop-sidecar`` — remove ``sealed.json``; the trusted tier is
      gone, so rehydration must report storage unavailable.
    """
    db_path = os.path.join(directory, "session.db")
    if kind == "drop-sidecar":
        os.unlink(os.path.join(directory, "sealed.json"))
        return
    conn = sqlite3.connect(db_path, isolation_level=None)
    try:
        if kind == "torn-write":
            row = conn.execute(
                "SELECT host, idx, blob FROM wal "
                "ORDER BY host, idx DESC LIMIT 1"
            ).fetchone()
            if row is None:
                raise RuntimeError("no WAL rows to tear")
            host, idx, blob = row
            conn.execute(
                "UPDATE wal SET blob = ? WHERE host = ? AND idx = ?",
                (blob[: max(1, len(blob) // 2)], host, idx),
            )
        elif kind == "corrupt-page":
            row = conn.execute(
                "SELECT host, blob FROM checkpoints ORDER BY host LIMIT 1"
            ).fetchone()
            if row is None:
                raise RuntimeError("no checkpoint rows to corrupt")
            host, blob = row
            middle = len(blob) // 2
            flipped = (
                blob[:middle]
                + chr((ord(blob[middle]) + 1) % 128)
                + blob[middle + 1 :]
            )
            conn.execute(
                "UPDATE checkpoints SET blob = ? WHERE host = ?",
                (flipped, host),
            )
        elif kind == "rollback":
            conn.execute("UPDATE journal SET boundary = boundary - 2")
        elif kind == "partial-fsync":
            conn.execute("DELETE FROM journal")
        else:
            raise ValueError(f"unknown tamper kind {kind!r}")
    finally:
        conn.close()
