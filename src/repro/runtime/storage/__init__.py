"""Durable storage tier behind :class:`~repro.runtime.checkpoint.DurableStore`.

See :mod:`repro.runtime.storage.base` for the backend contract and
error taxonomy, :mod:`~repro.runtime.storage.sqlite_backend` for the
SQLite-WAL implementation with process-death rehydration,
:mod:`~repro.runtime.storage.faultsim` for storage fault injection, and
:mod:`~repro.runtime.storage.harness` for the SIGKILL-and-rehydrate
harness (imported lazily — it forks).
"""

from __future__ import annotations

from .base import (
    STATS,
    DurabilityStats,
    StorageBackend,
    StorageError,
    StorageRetryPolicy,
    StorageUnavailableError,
    TransientStorageError,
)
from .codec import DecodeContext, StorageCodecError, advance_id_floors
from .memory import MemoryBackend
from .sqlite_backend import (
    SessionStorage,
    SQLiteBackend,
    default_storage,
    open_for_rehydration,
    rehydrate_session,
)

__all__ = [
    "DecodeContext",
    "DurabilityStats",
    "MemoryBackend",
    "STATS",
    "SQLiteBackend",
    "SessionStorage",
    "StorageBackend",
    "StorageCodecError",
    "StorageError",
    "StorageRetryPolicy",
    "StorageUnavailableError",
    "TransientStorageError",
    "advance_id_floors",
    "default_storage",
    "open_for_rehydration",
    "rehydrate_session",
    "stats",
    "reset_stats",
]


def stats() -> dict:
    """Snapshot of the process-wide durability counters."""
    return STATS.as_dict()


def reset_stats() -> None:
    STATS.reset()
