"""The storage-backend contract and its shared plumbing.

PR3's :class:`~repro.runtime.checkpoint.DurableStore` simulates stable
storage in process memory: good enough for the volatile-crash sweeps,
useless against actual process death.  This package puts a
:class:`StorageBackend` behind it.  The in-memory structures stay
authoritative — every read the runtime performs is served from memory —
and a backend, when attached, persists a *copy* of each WAL record and
sealed checkpoint so a fresh process can rehydrate the session.  With
no backend attached (the default) nothing here runs at all, which is
what keeps the fault-free Table 1 runs bit-identical to the seed.

Error taxonomy (the graceful-degradation contract):

* :class:`TransientStorageError` — worth retrying (a locked/busy
  database).  The retry loop in
  :class:`~repro.runtime.storage.sqlite_backend.SessionStorage` applies
  a bounded :class:`StorageRetryPolicy` before giving up.
* :class:`StorageUnavailableError` — the durable tier cannot be used at
  all (missing sidecar, deleted directory, disk full at open).  A live
  session *degrades*: it detaches the backend, records a ``degraded``
  trace event, and keeps running fail-closed in memory.  Rehydration,
  by contrast, has nothing to fall back to and raises.
* :class:`StorageError` — the common base; any other hard backend
  failure degrades the live session the same way.

Tampered persisted state is *not* a storage error: verification
failures raise :class:`~repro.runtime.checkpoint.CheckpointTamperError`
so recovery fails closed exactly like the in-process path.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Tuple


class StorageError(RuntimeError):
    """A durable-tier operation failed for good."""


class TransientStorageError(StorageError):
    """A retryable storage failure (locked or busy database)."""


class StorageUnavailableError(StorageError):
    """The durable tier is absent or unusable; nothing to load from."""


class StorageRetryPolicy:
    """Bounded retry-with-backoff for transient storage errors.

    Real wall-clock sleeps (this is actual I/O, not simulated time):
    attempt ``n`` waits ``min(base_delay * backoff**n, max_delay)``
    seconds, up to ``attempts`` retries before the error is treated as
    hard and the session degrades.
    """

    def __init__(
        self,
        attempts: int = 5,
        base_delay: float = 1e-3,
        backoff: float = 2.0,
        max_delay: float = 0.05,
    ) -> None:
        if attempts < 0:
            raise ValueError("attempts must be non-negative")
        if base_delay <= 0:
            raise ValueError("base_delay must be positive")
        if max_delay < base_delay:
            raise ValueError("max_delay must be >= base_delay")
        self.attempts = attempts
        self.base_delay = base_delay
        self.backoff = backoff
        self.max_delay = max_delay

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        return min(self.base_delay * (self.backoff ** attempt), self.max_delay)

    def sleep(self, attempt: int) -> None:
        time.sleep(self.delay(attempt))


class DurabilityStats:
    """Structured counters for the durable tier (``repro bench`` block).

    One process-wide instance (:data:`STATS`) accumulates across every
    session; ``repro bench`` resets it per run and reports the deltas.
    """

    __slots__ = (
        "appends",
        "fsyncs",
        "checkpoints",
        "boundaries",
        "rehydrations",
        "degradations",
        "retries",
        "op_timings",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: WAL records written through to a backend.
        self.appends = 0
        #: durable publishes (transaction commits + sidecar fsyncs).
        self.fsyncs = 0
        #: sealed checkpoints written through to a backend.
        self.checkpoints = 0
        #: session boundaries committed (journal + queue snapshot).
        self.boundaries = 0
        #: successful startup rehydrations.
        self.rehydrations = 0
        #: sessions that fell back to fail-closed in-memory mode.
        self.degradations = 0
        #: transient-error retries performed.
        self.retries = 0
        #: per-op accumulated wall-clock: op -> [count, seconds].
        self.op_timings: Dict[str, list] = {}

    def record(self, op: str, seconds: float) -> None:
        cell = self.op_timings.get(op)
        if cell is None:
            cell = self.op_timings[op] = [0, 0.0]
        cell[0] += 1
        cell[1] += seconds

    def as_dict(self) -> Dict[str, Any]:
        return {
            "appends": self.appends,
            "fsyncs": self.fsyncs,
            "checkpoints": self.checkpoints,
            "boundaries": self.boundaries,
            "rehydrations": self.rehydrations,
            "degradations": self.degradations,
            "retries": self.retries,
            "op_timings": {
                op: {"count": count, "seconds": round(seconds, 6)}
                for op, (count, seconds) in sorted(self.op_timings.items())
            },
        }


#: the process-wide durability counters.
STATS = DurabilityStats()


class StorageBackend:
    """One host's durable tier, as seen by its
    :class:`~repro.runtime.checkpoint.DurableStore`.

    The store passes pre-encoded, pre-sealed rows: ``blob`` is the
    codec's JSON text and ``seal`` the host-keyed HMAC over it (the
    store owns the key via its token factory; the backend is untrusted
    and never sees key material).  A backend that cannot persist must
    swallow the failure into its session's degradation path — the
    calling store never handles storage exceptions.
    """

    def append_wal(
        self, epoch: int, index: int, blob: str, seal: bytes
    ) -> None:
        """Persist WAL record ``index`` of checkpoint epoch ``epoch``."""
        raise NotImplementedError

    def save_checkpoint(self, epoch: int, blob: str, seal: bytes) -> None:
        """Persist the sealed checkpoint of ``epoch`` and drop the
        now-compacted WAL rows."""
        raise NotImplementedError

    def reset_run(self) -> None:
        """Drop every persisted row: the recycled session is a new
        storage lifetime, not a continuation."""
        raise NotImplementedError

    def load_checkpoint(self) -> Optional[Tuple[int, str, bytes]]:
        """(epoch, blob, seal) of the persisted checkpoint, or None."""
        raise NotImplementedError

    def load_wal(self) -> list:
        """The persisted WAL rows as (index, epoch, blob, seal),
        ordered by index."""
        raise NotImplementedError
