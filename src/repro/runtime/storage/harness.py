"""Kill-and-rehydrate harness: real process death, not simulated.

The crash sweeps of PR3 prove the *protocol* recovers from volatile
crashes, but the crashing host never actually leaves the process — its
Python heap survives.  This harness closes that gap:

1. run the workload to completion in-process (the **fault-free
   oracle**) and fingerprint it — observables, every field value, the
   audit log, the label-flow log;
2. ``os.fork()`` a worker that runs the same workload against a
   SQLite-backed :class:`SessionStorage` and SIGKILLs *itself* at a
   chosen trigger (after N committed boundaries, or mid-transaction
   after N WAL appends) — no cleanup handlers run, the heap is gone;
3. in the parent, :func:`~.sqlite_backend.rehydrate_session` from the
   dead worker's directory, run the resumed session to completion, and
   compare its fingerprint against the oracle.

Bit-identical fingerprints are the whole claim of the durable tier:
process death at any boundary loses no observable behavior.
"""

from __future__ import annotations

import os
import signal
import tempfile
from typing import Any, Dict, Optional, Tuple

from .sqlite_backend import SessionStorage, rehydrate_session

#: worker exit codes (anything else means the child died unexpectedly).
WORKER_COMPLETED = 7
WORKER_FAILED = 13


def fingerprint(session) -> Dict[str, Any]:
    """Everything observable about a finished run, hashable-stable."""
    outcome = session.result()
    fields = {}
    for key in sorted(session.split.fields):
        fields[key] = outcome.field_value(key[0], key[1], default=None)
    return {
        "observables": session.observables(),
        "fields": fields,
        "audits": list(outcome.network.audit_log),
        "flows": [tuple(flow) for flow in outcome.network.flow_log],
    }


def run_oracle(split, cost_model=None, opt_level: int = 1) -> Dict[str, Any]:
    """The fault-free, storage-free reference run."""
    from ...trust import KeyRegistry
    from ..session import RuntimeImage, Session

    image = RuntimeImage(split, KeyRegistry())
    session = Session(image, cost_model=cost_model, opt_level=opt_level)
    session.run()
    return fingerprint(session)


def _run_worker(
    split,
    directory: str,
    kill_after_boundaries: Optional[int],
    kill_after_appends: Optional[int],
    cost_model,
    opt_level: int,
) -> None:
    """Forked-child body: run until the trigger, then SIGKILL ourselves.

    Exits via ``os._exit`` on every path — a forked child must never
    unwind into the parent's interpreter machinery (atexit handlers,
    pytest internals)."""
    try:
        from ...trust import KeyRegistry
        from ..session import RuntimeImage, Session

        storage = SessionStorage(directory)

        def die(*_ignored) -> None:
            os.kill(os.getpid(), signal.SIGKILL)

        if kill_after_boundaries is not None:
            fired = [0]

            def on_boundary(boundary: int) -> None:
                fired[0] += 1
                if fired[0] >= kill_after_boundaries:
                    die()

            storage.boundary_hook = on_boundary
        if kill_after_appends is not None:
            appended = [0]

            def on_append(host: str, epoch: int, index: int) -> None:
                appended[0] += 1
                if appended[0] >= kill_after_appends:
                    die()

            storage.wal_hook = on_append
        image = RuntimeImage(split, KeyRegistry())
        session = Session(
            image, cost_model=cost_model, opt_level=opt_level,
            storage=storage,
        )
        session.run()
    except BaseException:
        os._exit(WORKER_FAILED)
    # Trigger never fired: the workload finished before the kill point.
    os._exit(WORKER_COMPLETED)


def kill_and_rehydrate(
    split,
    kill_after_boundaries: Optional[int] = None,
    kill_after_appends: Optional[int] = None,
    cost_model=None,
    opt_level: int = 1,
    directory: Optional[str] = None,
) -> Tuple[Dict[str, Any], Dict[str, Any], int]:
    """SIGKILL a forked worker mid-run, rehydrate, finish, compare.

    Returns ``(oracle_fingerprint, rehydrated_fingerprint, child_exit)``
    where ``child_exit`` is the negative signal number (``-SIGKILL``)
    when the kill landed, or a :data:`WORKER_COMPLETED` status when the
    workload outran the trigger (the caller decides whether that is
    acceptable for its kill point).
    """
    if kill_after_boundaries is None and kill_after_appends is None:
        raise ValueError("pick a kill trigger")
    oracle = run_oracle(split, cost_model=cost_model, opt_level=opt_level)
    own_dir = directory is None
    if own_dir:
        directory = tempfile.mkdtemp(prefix="repro-kill-")
    try:
        pid = os.fork()
        if pid == 0:
            _run_worker(
                split, directory, kill_after_boundaries,
                kill_after_appends, cost_model, opt_level,
            )
            os._exit(WORKER_FAILED)  # unreachable
        _, status = os.waitpid(pid, 0)
        if os.WIFSIGNALED(status):
            child_exit = -os.WTERMSIG(status)
        else:
            child_exit = os.WEXITSTATUS(status)
        session = rehydrate_session(split, directory)
        session.run()
        return oracle, fingerprint(session), child_exit
    finally:
        if own_dir:
            import shutil

            shutil.rmtree(directory, ignore_errors=True)
