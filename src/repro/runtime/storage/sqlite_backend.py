"""SQLite(WAL)-backed durable tier with process-death rehydration.

One :class:`SessionStorage` owns one directory holding

* ``session.db`` — a SQLite database in WAL journal mode.  Tables:
  per-host sealed ``checkpoints`` and write-ahead ``wal`` rows (sealed
  under each host's own key by its
  :class:`~repro.runtime.checkpoint.DurableStore` — the database never
  sees key material), a session-level ``journal`` row (execution flags,
  accounting, per-store counters, the id high-water marks), a snapshot
  of the pending control ``queue``, and the append-only ``flows`` log.
* ``sealed.json`` — the simulated TPM/HSM sidecar: the session's HMAC
  keys and a monotonic ``boundary`` counter.  It models sealed secure
  hardware (the same assumption :class:`DurableStore`'s ``high_water``
  counter already makes), so it is trusted by construction; every
  tamper test attacks only the database.

**Single writer, per-boundary transactions.**  The session is the only
writer.  Each step opens an explicit transaction before the control
message is handled; every WAL append and checkpoint the step performs
lands inside it; at the step boundary the queue snapshot, new flow
rows, and the sealed journal commit atomically, then the sidecar is
published with an fsync'd atomic rename.  A SIGKILL at any instruction
therefore leaves either boundary N or boundary N+1 — never a torn
state — and rehydration resumes from the last committed boundary by
re-executing deterministically.

**Rehydration** (:func:`rehydrate_session`): read the sidecar (missing
→ :class:`StorageUnavailableError`), verify the journal seal and its
boundary against the sidecar counter (a lone ``boundary+1`` is the
commit-then-sidecar crash window and rolls forward — safe because the
journal seal is unforgeable; anything else is a rollback and fails
closed), install host keys into a fresh registry, verify + install
each host's checkpoint, replay its WAL, restore the queue/flow/
accounting state, and run a management-plane recovery handshake (each
peer verifies the recovered host's sealed announcement directly — no
counted protocol messages, so message counts stay bit-identical to the
fault-free oracle).  Any verification or decode failure raises
:class:`~repro.runtime.checkpoint.CheckpointTamperError`.

**Graceful degradation.**  Every backend operation funnels through
:meth:`SessionStorage._run`: locked/busy errors retry under a bounded
:class:`~repro.runtime.storage.base.StorageRetryPolicy`; exhaustion or
any hard error (corrupt page, disk full, I/O error) *degrades* the
storage — the connection closes, a ``degraded`` trace event is
recorded, and the session keeps running on its authoritative in-memory
state.  A live run never crashes because its disk went away.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import random
import shutil
import sqlite3
import tempfile
import time
from collections import Counter, deque
from itertools import count as _count
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import codec
from .base import (
    STATS,
    StorageBackend,
    StorageRetryPolicy,
    StorageUnavailableError,
    TransientStorageError,
)

_SIDECAR_FORMAT = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS checkpoints (
    host TEXT PRIMARY KEY, epoch INTEGER NOT NULL,
    blob TEXT NOT NULL, seal BLOB NOT NULL);
CREATE TABLE IF NOT EXISTS wal (
    host TEXT NOT NULL, idx INTEGER NOT NULL, epoch INTEGER NOT NULL,
    blob TEXT NOT NULL, seal BLOB NOT NULL,
    PRIMARY KEY (host, idx));
CREATE TABLE IF NOT EXISTS journal (
    id INTEGER PRIMARY KEY CHECK (id = 1),
    boundary INTEGER NOT NULL, blob TEXT NOT NULL, seal BLOB NOT NULL);
CREATE TABLE IF NOT EXISTS queue (
    idx INTEGER PRIMARY KEY, blob TEXT NOT NULL, seal BLOB NOT NULL);
CREATE TABLE IF NOT EXISTS flows (
    idx INTEGER PRIMARY KEY, blob TEXT NOT NULL, seal BLOB NOT NULL);
"""


def _tamper(host: Optional[str], why: str):
    from ..checkpoint import CheckpointTamperError

    return CheckpointTamperError(
        f"{host}: {why}" if host else why
    )


class SessionStorage:
    """The durable tier of one session: SQLite database + sealed sidecar."""

    def __init__(
        self,
        directory: str,
        retry: Optional[StorageRetryPolicy] = None,
        synchronous: Optional[str] = None,
    ) -> None:
        self.directory = directory
        self.db_path = os.path.join(directory, "session.db")
        self.sidecar_path = os.path.join(directory, "sealed.json")
        self.retry = retry or StorageRetryPolicy()
        self.synchronous = (
            synchronous
            or os.environ.get("REPRO_STORAGE_SYNC", "NORMAL")
        ).upper()
        #: False once degraded: every further operation is a no-op.
        self.available = True
        self.degraded_reason: Optional[str] = None
        #: session callback fired exactly once, at degradation.
        self.on_degrade: Optional[Callable[[str], None]] = None
        #: True when auto-created from ``REPRO_STORAGE=sqlite`` — the
        #: session discards (deletes) it after a completed run.
        self.auto = False
        #: test hooks: fault injection per op, kill-harness triggers.
        self.fault_hook: Optional[Callable[[str], None]] = None
        self.wal_hook: Optional[Callable[[str, int, int], None]] = None
        self.boundary_hook: Optional[Callable[[int], None]] = None
        self._conn: Optional[sqlite3.Connection] = None
        self._session_key = os.urandom(32)
        self._keys: Dict[str, bytes] = {}
        self._digest: Optional[str] = None
        self._boundary = 0
        self._flow_len = 0
        self._in_txn = False
        self._open()

    # -- lifecycle ---------------------------------------------------------

    def _open(self) -> None:
        def work():
            os.makedirs(self.directory, exist_ok=True)
            conn = sqlite3.connect(self.db_path, isolation_level=None)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute(f"PRAGMA synchronous={self.synchronous}")
            conn.executescript(_SCHEMA)
            self._conn = conn

        self._run("open", work)

    def close(self) -> None:
        conn = self._conn
        self._conn = None
        if conn is not None:
            try:
                if self._in_txn:
                    conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            try:
                conn.close()
            except sqlite3.Error:
                pass
        self._in_txn = False

    def discard(self) -> None:
        """Close and delete the storage directory (auto-mode cleanup)."""
        self.close()
        self.available = False
        shutil.rmtree(self.directory, ignore_errors=True)

    # -- degradation funnel ------------------------------------------------

    def _degrade(self, reason: str) -> None:
        if not self.available:
            return
        self.available = False
        self.degraded_reason = reason
        self.close()
        STATS.degradations += 1
        if self.on_degrade is not None:
            self.on_degrade(reason)

    def _run(self, op: str, fn: Callable[[], Any], default: Any = None) -> Any:
        """Run one storage operation through the retry/degradation
        funnel.  Transient errors (locked/busy) retry with bounded
        backoff; anything else degrades the session to fail-closed
        in-memory mode.  Never raises."""
        if not self.available:
            return default
        if self._conn is None and op != "open":
            self._degrade(f"storage {op} failed: connection closed")
            return default
        started = perf_counter()
        attempt = 0
        while True:
            try:
                if self.fault_hook is not None:
                    self.fault_hook(op)
                result = fn()
                STATS.record(op, perf_counter() - started)
                return result
            except (TransientStorageError, sqlite3.OperationalError) as err:
                text = str(err).lower()
                transient = isinstance(err, TransientStorageError) or (
                    "locked" in text or "busy" in text
                )
                if transient and attempt < self.retry.attempts:
                    STATS.retries += 1
                    self.retry.sleep(attempt)
                    attempt += 1
                    continue
                self._degrade(f"storage {op} failed: {err}")
                return default
            except (sqlite3.Error, OSError, ValueError) as err:
                self._degrade(f"storage {op} failed: {err}")
                return default

    # -- seals -------------------------------------------------------------

    def _seal(self, prefix: bytes, blob: str) -> bytes:
        return hmac.new(
            self._session_key, prefix + blob.encode(), hashlib.sha256
        ).digest()

    def _check_seal(self, prefix: bytes, blob: str, seal) -> bool:
        if not isinstance(seal, (bytes, bytearray)):
            return False
        return hmac.compare_digest(self._seal(prefix, blob), bytes(seal))

    # -- session wiring ----------------------------------------------------

    def record_key(self, host: str, key: bytes) -> None:
        """Deposit one host key in the sealed sidecar (secure hardware:
        keys survive process death by assumption, like the paper's
        per-host signing keys)."""
        self._keys[host] = key

    def record_digest(self, digest: Any) -> None:
        self._digest = repr(digest)

    def backend_for(self, host: str) -> "SQLiteBackend":
        return SQLiteBackend(self, host)

    # -- transactions / boundaries ----------------------------------------

    def begin(self) -> None:
        if self._in_txn:
            return

        def work():
            self._conn.execute("BEGIN IMMEDIATE")
            self._in_txn = True

        self._run("begin", work)

    def save_boundary(self, session) -> None:
        """Commit one execution boundary: queue snapshot + new flow rows
        + sealed journal in the open transaction, then publish the
        sidecar.  This is the durable-publish point — after it returns,
        a SIGKILL loses nothing."""
        if not self.available:
            return
        boundary = self._boundary + 1
        net = session.network
        flow_len = len(net.flow_log)

        def work():
            conn = self._conn
            conn.execute("DELETE FROM queue")
            for idx, message in enumerate(net._queue):
                blob = codec.dumps(
                    {
                        "kind": message.kind,
                        "src": message.src,
                        "dst": message.dst,
                        "payload": message.payload,
                        "data_labels": list(message.data_labels),
                        "msg_id": message.msg_id,
                        "seq": message.seq,
                    }
                )
                conn.execute(
                    "INSERT INTO queue (idx, blob, seal) VALUES (?, ?, ?)",
                    (idx, blob, self._seal(b"queue|%d|" % idx, blob)),
                )
            for idx in range(self._flow_len, flow_len):
                blob = codec.dumps(tuple(net.flow_log[idx]))
                conn.execute(
                    "INSERT OR REPLACE INTO flows (idx, blob, seal) "
                    "VALUES (?, ?, ?)",
                    (idx, blob, self._seal(b"flow|%d|" % idx, blob)),
                )
            blob = codec.dumps(self._journal_state(session, boundary))
            conn.execute(
                "INSERT OR REPLACE INTO journal (id, boundary, blob, seal) "
                "VALUES (1, ?, ?, ?)",
                (boundary, blob, self._seal(b"journal|%d|" % boundary, blob)),
            )
            conn.execute("COMMIT")
            self._in_txn = False

        committed = self._run("boundary", lambda: (work(), True)[1], False)
        if not committed:
            return
        self._boundary = boundary
        self._flow_len = flow_len
        STATS.boundaries += 1
        STATS.fsyncs += 1
        self._publish_sidecar()
        if self.boundary_hook is not None:
            self.boundary_hook(boundary)

    def _journal_state(self, session, boundary: int) -> Dict[str, Any]:
        net = session.network
        rng = session._token_rng
        stores = {}
        for name, host in session.hosts.items():
            store = host.durable
            if store is not None:
                stores[name] = {
                    "high_water": store.high_water,
                    "recoveries": store.recoveries,
                    "processed": store.processed,
                    "checkpoints_taken": store.checkpoints_taken,
                    "interval": store.interval,
                    "wal_len": len(store.wal),
                }
        return {
            "boundary": boundary,
            "started": session._started,
            "halted": session._halted,
            "steps": session._steps,
            "main_frame": session._main_frame,
            "clock": net.clock,
            "check_time": net.check_time,
            "hash_time": net.hash_time,
            "counts": dict(net.counts),
            "eliminated": net.eliminated_roundtrips,
            "audit_log": list(net.audit_log),
            "fault_counts": dict(net.fault_counts),
            "fault_events": [tuple(event) for event in net.fault_events],
            "seq": dict(net._seq),
            "stamped": sum(net._seq.values()),
            "queue_len": len(net._queue),
            "flow_len": len(net.flow_log),
            "quarantine_enabled": net.quarantine_enabled,
            "quarantined": sorted(net.quarantined),
            "token_rng": (
                tuple(rng.getstate()) if rng is not None else None
            ),
            "hash_counts": {
                name: host.factory.hash_count
                for name, host in session.hosts.items()
            },
            "stores": stores,
        }

    def _publish_sidecar(self) -> None:
        def work():
            payload = json.dumps(
                {
                    "format": _SIDECAR_FORMAT,
                    "boundary": self._boundary,
                    "session_key": self._session_key.hex(),
                    "keys": {
                        host: key.hex() for host, key in self._keys.items()
                    },
                    "digest": self._digest,
                },
                sort_keys=True,
            )
            tmp = f"{self.sidecar_path}.tmp-{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.sidecar_path)
            dir_fd = os.open(self.directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)

        if self._run("sidecar", lambda: (work(), True)[1], False):
            STATS.fsyncs += 1

    # -- recycling ---------------------------------------------------------

    def reset_for_recycle(self) -> None:
        """Wind the session-level rows back to a fresh storage lifetime
        (the per-host rows are cleared by each DurableStore.reset).
        Like :meth:`DurableStore.reset`, this is a *legitimate* restart
        of the counter — the sidecar is rewritten to match, so the
        rollback check stays sound against database-only attackers."""

        def work():
            conn = self._conn
            conn.execute("DELETE FROM journal")
            conn.execute("DELETE FROM queue")
            conn.execute("DELETE FROM flows")

        self._run("reset", work)
        self._boundary = 0
        self._flow_len = 0


class SQLiteBackend(StorageBackend):
    """One host's durable rows inside a shared :class:`SessionStorage`."""

    __slots__ = ("storage", "host")

    def __init__(self, storage: SessionStorage, host: str) -> None:
        self.storage = storage
        self.host = host

    def append_wal(
        self, epoch: int, index: int, blob: str, seal: bytes
    ) -> None:
        storage = self.storage
        if storage.wal_hook is not None:
            storage.wal_hook(self.host, epoch, index)
        storage._run(
            "append_wal",
            lambda: storage._conn.execute(
                "INSERT OR REPLACE INTO wal (host, idx, epoch, blob, seal) "
                "VALUES (?, ?, ?, ?, ?)",
                (self.host, index, epoch, blob, seal),
            ),
        )

    def save_checkpoint(self, epoch: int, blob: str, seal: bytes) -> None:
        storage = self.storage

        def work():
            storage._conn.execute(
                "INSERT OR REPLACE INTO checkpoints (host, epoch, blob, seal) "
                "VALUES (?, ?, ?, ?)",
                (self.host, epoch, blob, seal),
            )
            storage._conn.execute(
                "DELETE FROM wal WHERE host = ?", (self.host,)
            )

        storage._run("save_checkpoint", work)

    def reset_run(self) -> None:
        storage = self.storage

        def work():
            storage._conn.execute(
                "DELETE FROM checkpoints WHERE host = ?", (self.host,)
            )
            storage._conn.execute(
                "DELETE FROM wal WHERE host = ?", (self.host,)
            )

        storage._run("reset_host", work)

    # -- rehydration reads (raise instead of degrading) --------------------

    def load_checkpoint(self) -> Optional[Tuple[int, str, bytes]]:
        row = _read_one(
            self.storage,
            "SELECT epoch, blob, seal FROM checkpoints WHERE host = ?",
            (self.host,),
        )
        return None if row is None else (row[0], row[1], row[2])

    def load_wal(self) -> List[Tuple[int, int, str, bytes]]:
        return _read_all(
            self.storage,
            "SELECT idx, epoch, blob, seal FROM wal WHERE host = ? "
            "ORDER BY idx",
            (self.host,),
        )


# ---------------------------------------------------------------------------
# Rehydration
# ---------------------------------------------------------------------------


def _read_one(storage: SessionStorage, sql: str, params=()):
    rows = _read_all(storage, sql, params)
    return rows[0] if rows else None


def _read_all(storage: SessionStorage, sql: str, params=()):
    try:
        return storage._conn.execute(sql, params).fetchall()
    except sqlite3.DatabaseError as error:
        raise _tamper(None, f"unreadable database: {error}") from error


def open_for_rehydration(
    directory: str, retry: Optional[StorageRetryPolicy] = None
) -> Tuple[SessionStorage, Dict[str, bytes], int]:
    """Open an existing storage directory for rehydration.

    Returns ``(storage, host_keys, sidecar_boundary)``.  Unlike the
    live-session path, absence is an error here: with no sidecar there
    is nothing trustworthy to load, so this raises
    :class:`StorageUnavailableError` rather than degrading.
    """
    sidecar_path = os.path.join(directory, "sealed.json")
    db_path = os.path.join(directory, "session.db")
    if not os.path.exists(sidecar_path):
        raise StorageUnavailableError(
            f"no sealed sidecar at {sidecar_path}: nothing to rehydrate"
        )
    if not os.path.exists(db_path):
        raise StorageUnavailableError(f"no database at {db_path}")
    try:
        with open(sidecar_path, "r", encoding="utf-8") as handle:
            sidecar = json.load(handle)
        if sidecar.get("format") != _SIDECAR_FORMAT:
            raise ValueError(f"sidecar format {sidecar.get('format')!r}")
        session_key = bytes.fromhex(sidecar["session_key"])
        keys = {
            host: bytes.fromhex(key)
            for host, key in sidecar["keys"].items()
        }
        boundary = int(sidecar["boundary"])
    except (OSError, ValueError, KeyError, TypeError) as error:
        # The sidecar models sealed hardware; if the trusted tier itself
        # is unreadable the durable tier is unavailable, not forged.
        raise StorageUnavailableError(
            f"unreadable sealed sidecar: {error}"
        ) from error
    storage = SessionStorage(directory, retry=retry)
    if not storage.available:
        raise StorageUnavailableError(
            f"cannot open database: {storage.degraded_reason}"
        )
    storage._session_key = session_key
    storage._keys = dict(keys)
    storage._digest = sidecar.get("digest")
    return storage, keys, boundary


def rehydrate_session(
    split,
    directory: str,
    cost_model=None,
    opt_level: int = 1,
    retry: Optional[StorageRetryPolicy] = None,
):
    """Rebuild a live :class:`~repro.runtime.session.Session` from a
    dead process's storage directory.

    The resumed session continues from the last committed boundary;
    because execution between boundaries is deterministic, running it
    to completion yields observables bit-identical to the fault-free
    oracle.  Fails closed: missing/unusable storage raises
    :class:`StorageUnavailableError`; any forged seal, rolled-back
    counter, truncated log, or undecodable blob raises
    :class:`~repro.runtime.checkpoint.CheckpointTamperError`.
    """
    from ...trust import KeyRegistry
    from ..checkpoint import Checkpoint, DurableStore, copy_state
    from ..checkpoint import recovery_blob
    from ..session import NO_STORAGE, RuntimeImage, Session

    started_at = perf_counter()
    storage, keys, sidecar_boundary = open_for_rehydration(
        directory, retry=retry
    )
    try:
        journal_row = _read_one(
            storage, "SELECT boundary, blob, seal FROM journal WHERE id = 1"
        )
        if journal_row is None:
            raise _tamper(None, "journal row missing from stable storage")
        boundary, blob, seal = journal_row
        if not storage._check_seal(b"journal|%d|" % boundary, blob, seal):
            raise _tamper(None, "journal seal verification failed")
        if boundary not in (sidecar_boundary, sidecar_boundary + 1):
            raise _tamper(
                None,
                f"journal boundary {boundary} vs sealed counter "
                f"{sidecar_boundary}: rollback detected",
            )
        ctx = codec.DecodeContext()
        try:
            journal = codec.loads(blob, ctx)
        except codec.StorageCodecError as error:
            raise _tamper(None, f"undecodable journal: {error}") from error
        if storage._digest is not None and storage._digest != repr(
            split.digest
        ):
            raise _tamper(
                None, "stored session is for a different split program"
            )

        registry = KeyRegistry()
        for host, key in keys.items():
            registry.install(f"host:{host}", key)
        image = RuntimeImage(split, registry)
        session = Session(
            image,
            cost_model=cost_model,
            opt_level=opt_level,
            storage=NO_STORAGE,
        )
        if set(session.hosts) != set(journal.get("stores", {})):
            raise _tamper(
                None,
                f"stored hosts {sorted(journal.get('stores', {}))} do not "
                f"match the split's hosts {sorted(session.hosts)}",
            )

        # Per-host: verify + install checkpoint, replay WAL.
        for name in sorted(session.hosts):
            host = session.hosts[name]
            meta = journal["stores"][name]
            backend = storage.backend_for(name)
            row = backend.load_checkpoint()
            if row is None:
                raise _tamper(name, "no checkpoint in stable storage")
            epoch, cp_blob, cp_seal = row
            if epoch != meta["high_water"]:
                raise _tamper(
                    name,
                    f"checkpoint epoch {epoch} does not match the sealed "
                    f"counter {meta['high_water']} (rollback)",
                )
            if not host.factory.verify_seal(
                name, "checkpoint-blob",
                b"%d|" % epoch + cp_blob.encode(), cp_seal,
            ):
                raise _tamper(name, "checkpoint seal verification failed")
            try:
                state = codec.loads(cp_blob, ctx)
            except codec.StorageCodecError as error:
                raise _tamper(
                    name, f"undecodable checkpoint: {error}"
                ) from error
            wal_rows = backend.load_wal()
            if len(wal_rows) != meta["wal_len"]:
                raise _tamper(
                    name,
                    f"WAL has {len(wal_rows)} records, sealed counter "
                    f"says {meta['wal_len']} (truncation)",
                )
            entries = []
            for index, wal_epoch, wal_blob, wal_seal in wal_rows:
                if not host.factory.verify_seal(
                    name, "wal-record",
                    b"%d|%d|" % (wal_epoch, index) + wal_blob.encode(),
                    wal_seal,
                ):
                    raise _tamper(
                        name, f"WAL record {index} seal verification failed"
                    )
                try:
                    entry = codec.loads(wal_blob, ctx)
                except codec.StorageCodecError as error:
                    raise _tamper(
                        name, f"undecodable WAL record {index}: {error}"
                    ) from error
                entries.append(tuple(entry))
            store = DurableStore(
                name, host.factory, interval=meta["interval"],
                backend=backend,
            )
            checkpoint = Checkpoint(name, epoch, copy_state(state))
            checkpoint.seal = host.factory.seal(
                "checkpoint", checkpoint.message_body()
            )
            store.checkpoint = checkpoint
            store.high_water = meta["high_water"]
            store.recoveries = meta["recoveries"]
            store.processed = meta["processed"]
            store.checkpoints_taken = meta["checkpoints_taken"]
            store.wal = list(entries)
            host.durable = store
            host._install_state(state)
            for entry in entries:
                host._replay(entry)

        # Control queue, flow log, accounting.
        net = session.network
        try:
            queue_rows = _read_all(
                storage, "SELECT idx, blob, seal FROM queue ORDER BY idx"
            )
            if len(queue_rows) != journal["queue_len"]:
                raise _tamper(
                    None,
                    f"queue has {len(queue_rows)} rows, journal says "
                    f"{journal['queue_len']}",
                )
            from ..network import Message

            queue = deque()
            for idx, q_blob, q_seal in queue_rows:
                if not storage._check_seal(b"queue|%d|" % idx, q_blob, q_seal):
                    raise _tamper(None, f"queue row {idx} seal failed")
                fields = codec.loads(q_blob, ctx)
                queue.append(
                    Message(
                        fields["kind"], fields["src"], fields["dst"],
                        fields["payload"],
                        data_labels=fields["data_labels"],
                        msg_id=fields["msg_id"], seq=fields["seq"],
                    )
                )
            flow_rows = _read_all(
                storage, "SELECT idx, blob, seal FROM flows ORDER BY idx"
            )
            if len(flow_rows) != journal["flow_len"]:
                raise _tamper(
                    None,
                    f"flow log has {len(flow_rows)} rows, journal says "
                    f"{journal['flow_len']}",
                )
            flows = []
            for idx, f_blob, f_seal in flow_rows:
                if not storage._check_seal(b"flow|%d|" % idx, f_blob, f_seal):
                    raise _tamper(None, f"flow row {idx} seal failed")
                flows.append(tuple(codec.loads(f_blob, ctx)))
        except codec.StorageCodecError as error:
            raise _tamper(None, f"undecodable session row: {error}") from error

        net._queue = queue
        net.flow_log = flows
        net.clock = journal["clock"]
        net.check_time = journal["check_time"]
        net.hash_time = journal["hash_time"]
        net.counts = Counter(journal["counts"])
        net.eliminated_roundtrips = journal["eliminated"]
        net.audit_log = list(journal["audit_log"])
        net.fault_counts = Counter(journal["fault_counts"])
        net.fault_events = [tuple(event) for event in journal["fault_events"]]
        net._seq = Counter(journal["seq"])
        net._msg_ids = _count(journal["stamped"] + 1)
        net.quarantine_enabled = journal["quarantine_enabled"]
        net.quarantined = set(journal["quarantined"])

        session._started = journal["started"]
        session._halted = journal["halted"]
        session._steps = journal["steps"]
        session._main_frame = journal["main_frame"]
        rng_state = journal.get("token_rng")
        if rng_state is not None:
            rng = random.Random()
            rng.setstate(_rng_state(rng_state))
            session._token_rng = rng
            for host in session.hosts.values():
                host.factory._rng = rng
        for name, hashes in journal["hash_counts"].items():
            session.hosts[name].factory.hash_count = hashes

        codec.advance_id_floors(ctx)

        # Management-plane recovery handshake: every peer verifies the
        # rehydrated host's sealed announcement directly — trace events
        # only, no counted protocol messages, so message counts stay
        # bit-identical to the fault-free oracle.
        for name in sorted(session.hosts):
            host = session.hosts[name]
            store = host.durable
            blob_bytes = recovery_blob(
                name, store.high_water, store.recoveries
            )
            announcement = host.factory.seal("recover", blob_bytes)
            for peer_name, peer in session.hosts.items():
                if peer_name == name:
                    continue
                if not peer.factory.verify_seal(
                    name, "recover", blob_bytes, announcement
                ):
                    raise _tamper(
                        name, "rehydration announcement rejected by "
                        f"{peer_name}",
                    )
            net._emit(
                "rehydrate", None, name,
                f"epoch {store.high_water} + {len(store.wal)} WAL entries "
                f"installed from {os.path.basename(directory)}",
            )

        storage._boundary = boundary
        storage._flow_len = journal["flow_len"]
        session.storage = storage
        storage.on_degrade = session._note_degraded
        if boundary != sidecar_boundary:
            # Roll forward: the process died after COMMIT but before the
            # sidecar publish; re-sync the sealed counter.
            storage._publish_sidecar()
        STATS.rehydrations += 1
        STATS.record("rehydrate", perf_counter() - started_at)
        return session
    except (KeyError, TypeError, IndexError, AttributeError) as error:
        storage.close()
        raise _tamper(None, f"malformed persisted session: {error}") from error
    except BaseException:
        storage.close()
        raise


def _rng_state(state):
    """``random.Random.setstate`` needs the exact nested tuple shape."""
    version, internal, gauss = state
    return (version, tuple(internal), gauss)


# ---------------------------------------------------------------------------
# Environment-driven default storage (``REPRO_STORAGE=sqlite``)
# ---------------------------------------------------------------------------

_auto_base_dir: Optional[str] = None


def _auto_base() -> str:
    global _auto_base_dir
    if _auto_base_dir is None:
        configured = os.environ.get("REPRO_STORAGE_DIR")
        if configured:
            os.makedirs(configured, exist_ok=True)
            _auto_base_dir = configured
        else:
            _auto_base_dir = tempfile.mkdtemp(prefix="repro-storage-")
            import atexit

            atexit.register(
                shutil.rmtree, _auto_base_dir, ignore_errors=True
            )
    return _auto_base_dir


def default_storage() -> Optional[SessionStorage]:
    """A per-session storage when ``REPRO_STORAGE=sqlite`` is set, else
    None.  Auto storages are discarded after a completed ``run()``."""
    mode = os.environ.get("REPRO_STORAGE", "").strip().lower()
    if mode in ("", "0", "memory", "none", "off"):
        return None
    if mode not in ("sqlite", "sqlite3"):
        raise ValueError(f"unknown REPRO_STORAGE mode {mode!r}")
    directory = tempfile.mkdtemp(prefix="session-", dir=_auto_base())
    storage = SessionStorage(directory)
    storage.auto = True
    return storage
