"""Many-session execution: shared runtime images and pooled sessions.

The paper's deployment model is *compile once, run many times*: a
partitioned program is published and then executed over and over by
mutually distrusting principals.  PR5/PR6 content-addressed the whole
compile pipeline, so by the time a request arrives the split artifact
is a cache hit — execution was the last stage still paying full setup
cost per run.  This module splits the runtime's state along the same
immutable/mutable line the compile caches use:

* :class:`RuntimeImage` — everything about a (split, key registry)
  pair that no run ever mutates, built once and shared by every
  session: the :class:`~repro.splitter.fragments.SplitProgram` itself,
  the compiled fragment cache, the per-host key material (HMAC keys
  derived exactly once per registry — the reuse contract of
  :func:`~repro.runtime.executor.run_split_program`), per-host entry
  tables and invoker ACLs, initial field values, and the precomputed
  results of the per-variable forward integrity checks (Figure 6's
  ``I_src ⊑ I(L_var)`` is static per split, so sessions answer it with
  a set lookup instead of a lattice operation).

* :class:`Session` — everything one run mutates: the simulated
  network (clock, counts, logs, control queue, quarantine set), and
  per-host frames, field/array stores, ICS slices, token factories,
  idempotency tables, deferred forwards, and checkpoint WALs.  Each
  session's simulated clock and trace are fully isolated; interleaving
  sessions cannot change any session's observables.

* :class:`SessionPool` — recycles sessions by **reset-in-place**:
  :meth:`Session.reset` clears the mutable state rather than
  reconstructing hosts and network, so the steady-state cost of a
  pooled run is the run itself.

* :class:`MultiSessionDriver` — interleaves many concurrent sessions
  over one shared image, one control message at a time, measuring
  per-session wall-clock latency.  This is the engine under
  ``python -m repro bench --throughput``.

``DistributedExecutor`` remains the public single-run API; it is now a
thin :class:`Session` subclass that builds (or reuses) the image for
its split, so every existing call site gets artifact sharing for free.
"""

from __future__ import annotations

import gc
import os
import time
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from ..labels import Label
from ..splitter.fragments import Fragment, SplitProgram
from ..trust import KeyRegistry
from .compiler import CompiledProgram, compilation_enabled, compile_split
from .faults import FaultInjector
from .host import ExecutionState, HaltSignal, TrustedHost
from .network import CostModel, SimNetwork
from .storage import default_storage
from .values import FrameID

_MAX_STEPS = 2_000_000

#: ``Session(storage=NO_STORAGE)``: explicitly no durable tier, even
#: when ``REPRO_STORAGE=sqlite`` would auto-create one (the rehydration
#: path uses this — it installs persisted state itself).
NO_STORAGE = object()

#: ``Session.reset(storage=_KEEP)``: recycle the attached storage.
_KEEP = object()

#: Default for ExecutionResult accessors: raise on a missing name.
_RAISE = object()


class ExecutionResult:
    """Everything observable about one distributed run."""

    def __init__(
        self,
        network: SimNetwork,
        hosts: Dict[str, TrustedHost],
        main_frame: FrameID,
    ) -> None:
        self.network = network
        self.hosts = hosts
        self.main_frame = main_frame

    @property
    def elapsed(self) -> float:
        return self.network.clock

    @property
    def counts(self) -> Dict[str, int]:
        return self.network.table_counts()

    @property
    def audits(self):
        return self.network.audit_log

    def field_value(
        self,
        cls: str,
        field: str,
        oid: Optional[int] = None,
        default: Any = _RAISE,
    ) -> Any:
        """The stored value of a field (from whichever host holds it).

        Raises :class:`KeyError` when no host stores the field; pass
        ``default=`` to get a fallback value instead.
        """
        for host in self.hosts.values():
            key = (cls, field, oid)
            if key in host.field_store:
                return host.field_store[key]
        if default is not _RAISE:
            return default
        raise KeyError(f"field {cls}.{field} not found on any host")

    def var_value(self, frame: FrameID, var: str, default: Any = _RAISE) -> Any:
        """The value of a frame variable (from any host's copy).

        Raises :class:`KeyError` when no host's frame copy binds the
        variable — a silent ``None`` here has historically masked typos
        in test assertions.  Pass ``default=`` to get a fallback value
        instead.
        """
        for host in self.hosts.values():
            frame_copy = host.frames.get(frame)
            if frame_copy is not None and var in frame_copy:
                return frame_copy[var]
        if default is not _RAISE:
            return default
        raise KeyError(f"variable {var!r} not bound in any copy of {frame!r}")

    def main_var(self, var: str, default: Any = _RAISE) -> Any:
        return self.var_value(self.main_frame, var, default)


class HostImage:
    """One host's slice of a :class:`RuntimeImage` — the per-host
    artifacts that no session mutates."""

    __slots__ = (
        "name",
        "entries",
        "entry_acl",
        "entry_table",
        "field_defaults",
        "forward_denied",
        "constant_denied",
        "compiled",
    )

    def __init__(
        self,
        name: str,
        split: SplitProgram,
        forward_denied: Dict[str, FrozenSet[Tuple[Tuple[str, str], str]]],
        constant_denied: FrozenSet[str],
        compiled: Optional[CompiledProgram],
    ) -> None:
        self.name = name
        #: the image-wide compiled fragment cache (shared across hosts;
        #: None when REPRO_COMPILE=0 selects the interpreter).
        self.compiled = compiled
        #: entries this host serves.
        self.entries: Dict[str, Fragment] = {
            f.entry: f for f in split.fragments_on(name)
        }
        #: per-entry invoker ACLs (Figure 6's ``I_i ⊑ I_e``).
        self.entry_acl: Dict[str, FrozenSet[str]] = {
            entry: split.entry_invokers(entry) for entry in self.entries
        }
        #: per-entry dispatch table: entry -> (fragment, invoker ACL),
        #: so the sync/rgoto hot path validates with one dict probe.
        self.entry_table: Dict[str, Tuple[Fragment, FrozenSet[str]]] = {
            entry: (fragment, self.entry_acl[entry])
            for entry, fragment in self.entries.items()
        }
        #: initial values of statically placed fields; sessions start
        #: from a plain copy of this dict.
        self.field_defaults: Dict[Tuple[str, str, Optional[int]], Any] = {
            (p.cls, p.field, None): p.default_value()
            for p in split.fields_on(name)
        }
        #: shared (image-wide) forward integrity-check results.
        self.forward_denied = forward_denied
        self.constant_denied = constant_denied


class RuntimeImage:
    """The immutable per-(split, registry) runtime artifacts.

    Built once, shared by arbitrarily many sessions (and by every
    :class:`~repro.runtime.executor.DistributedExecutor` over the same
    split): nothing in here is ever mutated by a run.  Sharing is also
    the key-reuse contract — the registry's HMAC keys are derived once
    per image, not once per run.
    """

    __slots__ = (
        "split",
        "registry",
        "compiled",
        "host_images",
        "main_method_key",
    )

    def __init__(
        self, split: SplitProgram, registry: Optional[KeyRegistry] = None
    ) -> None:
        self.split = split
        self.registry = registry or KeyRegistry()
        #: compiled fragment cache, shared across hosts and sessions
        #: (``None`` when REPRO_COMPILE=0 selects the interpreter).
        self.compiled: Optional[CompiledProgram] = (
            compile_split(split) if compilation_enabled() else None
        )
        # Derive every host key now, so no session pays for it.
        for descriptor in split.config.hosts:
            self.registry.register(f"host:{descriptor.name}")
        forward_denied, constant_denied = self._precompute_forward_checks(split)
        self.host_images: Dict[str, HostImage] = {
            descriptor.name: HostImage(
                descriptor.name,
                split,
                forward_denied,
                constant_denied,
                self.compiled,
            )
            for descriptor in split.config.hosts
        }
        #: the main method's key, or None for a program with no main
        #: (sessions over such a split can be constructed, not started).
        self.main_method_key = (
            split.fragments[split.main_entry].method_key
            if split.main_entry is not None
            else None
        )

    @staticmethod
    def _precompute_forward_checks(
        split: SplitProgram,
    ) -> Tuple[
        Dict[str, FrozenSet[Tuple[Tuple[str, str], str]]], FrozenSet[str]
    ]:
        """The forward integrity checks, evaluated once per image.

        A ``forward`` applies ``I_src ⊑ I(L_var)`` per variable; both
        sides are static per split, so the denied (src, method, var)
        combinations are a fixed set.  Honest runs never hit a denial —
        the common case is an empty set per sender.
        """
        hierarchy = split.config.hierarchy
        forward_denied: Dict[str, FrozenSet[Tuple[Tuple[str, str], str]]] = {}
        constant_integ = Label.constant().integ
        constant_denied = frozenset(
            descriptor.name
            for descriptor in split.config.hosts
            if not descriptor.integ.flows_to(constant_integ, hierarchy)
        )
        for descriptor in split.config.hosts:
            denied = []
            for method_key, plan in split.methods.items():
                for var, label in plan.var_labels.items():
                    if not descriptor.integ.flows_to(label.integ, hierarchy):
                        denied.append((method_key, var))
            forward_denied[descriptor.name] = frozenset(denied)
        return forward_denied, constant_denied

    @classmethod
    def for_split(
        cls, split: SplitProgram, registry: Optional[KeyRegistry] = None
    ) -> "RuntimeImage":
        """The shared image of ``split``, memoized on the split object.

        With ``registry=None`` (the common case) every caller gets the
        same image and therefore the same derived key material; passing
        an explicit registry yields an image bound to it (memoized per
        registry object).  The cache key includes the compilation mode
        so toggling ``REPRO_COMPILE`` between runs builds the matching
        image rather than reusing a stale one.
        """
        images = getattr(split, "_images", None)
        if images is None:
            images = split._images = {}
        key = (
            id(registry) if registry is not None else None,
            compilation_enabled(),
        )
        image = images.get(key)
        if image is None or (
            registry is not None and image.registry is not registry
        ):
            image = images[key] = cls(split, registry)
        return image


class Session:
    """One run's mutable state over a shared :class:`RuntimeImage`.

    Drives the same control loop the executor always ran, but exposes
    it step-wise (:meth:`start` / :meth:`step`) so a driver can
    interleave many concurrent sessions, and supports
    :meth:`reset`-in-place so a pool can recycle it without
    reconstructing hosts or network.
    """

    def __init__(
        self,
        image: RuntimeImage,
        cost_model: Optional[CostModel] = None,
        opt_level: int = 1,
        faults: Optional[FaultInjector] = None,
        token_rng=None,
        quarantine: bool = False,
        checkpoint_interval: int = 4,
        storage=None,
        record_logs: bool = True,
    ) -> None:
        self.image = image
        self.split = image.split
        self.registry = image.registry
        self.network = SimNetwork(cost_model, faults=faults)
        #: opt in to the quarantine layer: a rejected remote request
        #: raises SecurityAbort and blacklists the offender instead of
        #: being silently ignored.
        self.network.quarantine_enabled = quarantine
        #: ``record_logs=False`` runs the lean hot path: per-message and
        #: per-flow trace events are never constructed (the observables
        #: — counts, clock, ICS depths — don't depend on them).  The
        #: throughput driver's sessions run lean; attaching a Tracer
        #: switches recording back on.
        self.network.record_logs = record_logs
        #: the optional durable tier (a :class:`~repro.runtime.storage.
        #: sqlite_backend.SessionStorage`); ``None`` consults the
        #: ``REPRO_STORAGE`` environment default.
        if storage is None:
            storage = default_storage()
        elif storage is NO_STORAGE:
            storage = None
        self.storage = storage
        self._token_rng = token_rng
        self.hosts: Dict[str, TrustedHost] = {}
        for descriptor in self.split.config.hosts:
            self.hosts[descriptor.name] = TrustedHost(
                descriptor.name,
                self.split,
                self.network,
                self.registry,
                opt_level=opt_level,
                token_rng=token_rng,
                checkpoint_interval=checkpoint_interval,
                image=image.host_images[descriptor.name],
            )
        self._main_frame: Optional[FrameID] = None
        self._started = False
        self._halted = False
        self._steps = 0
        if self.storage is not None:
            self._attach_storage()

    def _attach_storage(self) -> None:
        """Wire every host's durable store to the session's persistent
        tier and publish boundary 1 (base checkpoints + empty journal)."""
        storage = self.storage
        storage.on_degrade = self._note_degraded
        if not storage.available:
            self._note_degraded(
                storage.degraded_reason or "storage unavailable"
            )
            return
        for name in self.hosts:
            storage.record_key(name, self.registry.key_of(f"host:{name}"))
        storage.record_digest(self.split.digest)
        storage.begin()
        for host in self.hosts.values():
            host.attach_storage(storage)
        storage.save_boundary(self)

    def _note_degraded(self, reason: str) -> None:
        """The durable tier failed: detach it and keep running
        fail-closed on the authoritative in-memory state.  Recorded in
        the trace so a deployment can see it lost durability."""
        self.network._emit("degraded", None, None, reason)
        for host in self.hosts.values():
            host.detach_storage()

    # -- lifecycle -----------------------------------------------------------

    def reset(
        self,
        cost_model: Optional[CostModel] = None,
        opt_level: int = 1,
        faults: Optional[FaultInjector] = None,
        token_rng=None,
        quarantine: bool = False,
        checkpoint_interval: int = 4,
        storage=_KEEP,
        record_logs: bool = True,
    ) -> "Session":
        """Reset-in-place back to a fresh session over the same image.

        Clears every piece of mutable state — network accounting and
        queues, host frames/fields/arrays/ICS/dedup tables, durable
        stores, trace listeners — without reconstructing any object, so
        a pooled run's steady-state cost is the run itself.  Parameters
        mirror ``__init__`` and default to a fault-free session.

        ``storage`` defaults to recycling the attached durable tier in
        place (its persisted rows are wound back to a fresh lifetime);
        pass ``None``/``NO_STORAGE`` to detach it, or a new
        ``SessionStorage`` to swap tiers.
        """
        if storage is _KEEP:
            storage = self.storage
        elif storage is NO_STORAGE:
            storage = None
        if storage is not self.storage:
            # Swapping tiers: sever the old one before anything writes.
            if self.storage is not None:
                self.storage.close()
            for host in self.hosts.values():
                host.detach_storage()
        self.storage = storage
        self._token_rng = token_rng
        usable = storage is not None and storage.available
        if usable:
            storage.begin()
            storage.reset_for_recycle()
        self.network.reset(faults=faults)
        if cost_model is not None:
            self.network.cost = cost_model
        self.network.quarantine_enabled = quarantine
        self.network.record_logs = record_logs
        for host in self.hosts.values():
            # Hosts whose durable store still points at `storage`
            # recycle their persisted rows in place here.
            host.reset(
                opt_level=opt_level,
                token_rng=token_rng,
                checkpoint_interval=checkpoint_interval,
            )
        self._main_frame = None
        self._started = False
        self._halted = False
        self._steps = 0
        if storage is None:
            for host in self.hosts.values():
                host.detach_storage()
            return self
        storage.on_degrade = self._note_degraded
        if usable and storage.available:
            for name in self.hosts:
                storage.record_key(
                    name, self.registry.key_of(f"host:{name}")
                )
            storage.record_digest(self.split.digest)
            for host in self.hosts.values():
                if host.durable is None or host.durable.backend is None:
                    host.attach_storage(storage)
            storage.save_boundary(self)
        elif not storage.available:
            self._note_degraded(
                storage.degraded_reason or "storage unavailable"
            )
        return self

    @property
    def halted(self) -> bool:
        return self._halted

    def start(self) -> bool:
        """Mint the root capability and run the main chain until control
        first leaves the main host; returns True when that already
        completed the program."""
        assert not self._started, "session already started; reset() first"
        split = self.split
        assert split.main_entry is not None
        assert self.image.main_method_key is not None
        storage = self.storage
        if storage is not None and storage.available:
            storage.begin()
        main_host = self.hosts[split.main_host]
        self._main_frame = FrameID(self.image.main_method_key)
        # The root capability t0: consuming it halts the program.
        root = main_host.factory.mint(self._main_frame, split.main_entry)
        main_host.adopt_root(root)
        state = ExecutionState(split.main_entry, self._main_frame, root)
        self._started = True
        try:
            main_host.run_chain(state)
        except HaltSignal:
            self._halted = True
        if storage is not None and storage.available:
            storage.save_boundary(self)
        return self._halted

    def step(self) -> bool:
        """Deliver one pending control message; returns True when the
        program has halted."""
        if self._halted:
            return True
        storage = self.storage
        if storage is not None and storage.available:
            storage.begin()
        message = self.network.pop_control()
        if message is None:
            raise RuntimeError(
                "distributed execution stalled: no control message "
                "pending and the program has not halted"
            )
        handler = self.hosts[message.dst]
        try:
            handler.handle(message)
        except HaltSignal:
            self._halted = True
        self._steps += 1
        if self._steps > _MAX_STEPS:
            raise RuntimeError("execution exceeded the step budget")
        if storage is not None and storage.available:
            storage.save_boundary(self)
        return self._halted

    def run(self) -> ExecutionResult:
        """Execute the program to completion."""
        if not self._started:
            self.start()
        while not self._halted:
            self.step()
        storage = self.storage
        if storage is not None and storage.auto:
            # Environment-created tiers are per-run scratch space; a
            # completed run has nothing left to rehydrate.
            storage.discard()
            self.storage = None
        return self.result()

    def result(self) -> ExecutionResult:
        assert self._main_frame is not None, "session never started"
        return ExecutionResult(self.network, self.hosts, self._main_frame)

    def observables(self) -> Dict[str, Any]:
        """The invariant surface one run exposes: message counts,
        simulated time, and per-host ICS depths — the facts the
        throughput harness pins bit-identical to the single-run oracle."""
        return {
            "messages": self.network.table_counts(),
            "simulated_seconds": round(self.network.clock, 6),
            "ics_depths": {
                name: host.stack.depth
                for name, host in sorted(self.hosts.items())
            },
        }


class SessionPool:
    """A free-list of reusable sessions over one shared image.

    ``acquire`` hands out a reset session (creating one only when the
    free list is empty); ``release`` resets it in place and returns it
    to the list.  Sessions are uniform: every acquisition sees the
    options the pool was built with.  Pools are meant for the
    deterministic fault-free serving path; attaching a shared
    ``FaultInjector`` is allowed but its RNG state deliberately carries
    across sessions (schedules stay seed-reproducible end to end).
    """

    def __init__(self, image: RuntimeImage, size: int = 0, **session_opts) -> None:
        self.image = image
        self._opts = session_opts
        self._free: List[Session] = [
            Session(image, **session_opts) for _ in range(size)
        ]
        #: sessions ever constructed / resets performed (observability).
        self.created = size
        self.resets = 0

    def acquire(self) -> Session:
        if self._free:
            return self._free.pop()
        self.created += 1
        return Session(self.image, **self._opts)

    def release(self, session: Session) -> None:
        assert session.image is self.image, "session from a different image"
        session.reset(**self._opts)
        self.resets += 1
        self._free.append(session)

    def __len__(self) -> int:
        return len(self._free)


class MultiSessionDriver:
    """Interleaves many concurrent sessions over shared images.

    Keeps up to ``concurrency`` sessions in flight, delivering one
    control message to each in round-robin order — the single-threaded
    analogue of a server multiplexing requests — and records each
    session's wall-clock latency and invariant observables.  Every
    session's simulated clock, trace, and state are isolated in its own
    :class:`Session`, so interleaving is observably identical to
    running the sessions back to back.

    ``image`` may be a single :class:`RuntimeImage` or a list of them:
    with several images the driver serves a *mixed* program set — a
    multi-program gateway — launching sessions round-robin across the
    images.  Each image gets its own :class:`SessionPool`, so recycled
    state (frames, dedup tables, quarantine sets) can never migrate
    between programs: a session is only ever reset back into the pool
    of the image that built it.

    Driver sessions default to ``record_logs=False`` (the lean hot
    path): the driver measures observables — counts, simulated clock,
    ICS depths — which never depend on the per-message event logs, and
    no collector is attached.  Pass ``record_logs=True`` to keep full
    logs, or attach a Tracer to an individual session.
    """

    def __init__(
        self,
        image,
        concurrency: int = 32,
        pool: Optional[SessionPool] = None,
        **session_opts,
    ) -> None:
        self.concurrency = max(1, concurrency)
        session_opts.setdefault("record_logs", False)
        images = list(image) if isinstance(image, (list, tuple)) else [image]
        if pool is not None:
            self.pools = [pool]
            self.images = [pool.image]
        else:
            size = max(1, min(self.concurrency, 8) // len(images))
            self.pools = [
                SessionPool(img, size=size, **session_opts) for img in images
            ]
            self.images = images
        #: back-compat alias: the first (often only) pool.
        self.pool = self.pools[0]

    def run_many(
        self,
        count: int,
        observer: Optional[Callable[[Session], Any]] = None,
    ) -> List[Dict[str, Any]]:
        """Drive ``count`` sessions to completion; returns one record
        per session (in completion order): its wall-clock ``latency``
        plus :meth:`Session.observables`.  With a mixed image set the
        launches rotate across the images (session ``i`` comes from
        image ``i % len(images)``).  ``observer`` (if given) runs on
        each completed session *before* it is recycled — the hook the
        harness uses to check invariants against the solo oracle; use
        ``session.image`` to tell the programs apart.

        The cyclic garbage collector is paused for the duration of the
        drive (a standard serving-loop optimization: session recycling
        churns almost exclusively acyclic, refcounted objects, and a
        mid-drive gen-2 sweep is a latency spike for whichever session
        it lands on).  Cycles created during a drive are bounded by the
        drive and collected at the next normal threshold after GC is
        re-enabled.  ``REPRO_GC_PAUSE=0`` keeps the collector running.
        """
        perf = time.perf_counter
        pools = self.pools
        pause_gc = (
            gc.isenabled()
            and os.environ.get("REPRO_GC_PAUSE", "1") != "0"
        )
        active: List[Tuple[Session, float, SessionPool]] = []
        records: List[Dict[str, Any]] = []
        launched = 0

        def finish(session: Session, started_at: float, pool: SessionPool) -> None:
            record = session.observables()
            record["latency"] = perf() - started_at
            if observer is not None:
                observer(session)
            records.append(record)
            pool.release(session)

        if pause_gc:
            gc.disable()
        try:
            while launched < count or active:
                while launched < count and len(active) < self.concurrency:
                    pool = pools[launched % len(pools)]
                    session = pool.acquire()
                    started_at = perf()
                    launched += 1
                    if session.start():
                        finish(session, started_at, pool)
                    else:
                        active.append((session, started_at, pool))
                # One delivery per in-flight session, oldest first.
                still_running: List[Tuple[Session, float, SessionPool]] = []
                for session, started_at, pool in active:
                    if session.step():
                        finish(session, started_at, pool)
                    else:
                        still_running.append((session, started_at, pool))
                active = still_running
        finally:
            if pause_gc:
                gc.enable()
        return records
